//! Property tests for the observability layer: histogram merge is
//! order-invariant and count-preserving, bit-for-bit.

use proptest::prelude::*;
use qp_obs::Histogram;

proptest! {
    /// Splitting any observation stream into chunks and merging the
    /// chunk histograms in any order reproduces the whole-stream
    /// histogram exactly — the property that makes parallel observation
    /// deterministic.
    #[test]
    fn merge_is_order_invariant_and_count_preserving(
        values in proptest::collection::vec(
            prop_oneof![
                0.0f64..1e-6,
                0.0f64..1e3,
                1e3f64..1e9,
                Just(0.0f64),
            ],
            0..200,
        ),
        cuts in proptest::collection::vec(0usize..200, 0..6),
        rotate in 0usize..8,
    ) {
        let mut whole = Histogram::new();
        for &v in &values {
            whole.observe(v);
        }

        // Split into chunks at the (sorted, deduped, in-range) cuts.
        let mut bounds: Vec<usize> = cuts.into_iter()
            .map(|c| c % (values.len() + 1))
            .collect();
        bounds.push(0);
        bounds.push(values.len());
        bounds.sort_unstable();
        bounds.dedup();
        let mut parts: Vec<Histogram> = bounds
            .windows(2)
            .map(|w| {
                let mut h = Histogram::new();
                for &v in &values[w[0]..w[1]] {
                    h.observe(v);
                }
                h
            })
            .collect();

        // Merge in a permuted order.
        if !parts.is_empty() {
            let r = rotate % parts.len();
            parts.rotate_left(r);
        }
        let mut merged = Histogram::new();
        for p in &parts {
            merged.merge(p);
        }
        // And in reverse, pairwise from the other end.
        let mut reversed = Histogram::new();
        for p in parts.iter().rev() {
            reversed.merge(p);
        }

        prop_assert_eq!(&merged, &whole);
        prop_assert_eq!(&reversed, &whole);
        prop_assert_eq!(merged.count(), values.len() as u64);
    }

    /// The rendered exposition of equal registries is byte-identical,
    /// and observation order does not matter.
    #[test]
    fn exposition_is_observation_order_invariant(
        mut values in proptest::collection::vec(0.0f64..1e6, 1..60),
    ) {
        let a = qp_obs::Registry::new();
        for &v in &values {
            a.observe("lat_ms", v);
            a.counter_add("n_total", 1);
        }
        values.reverse();
        let b = qp_obs::Registry::new();
        for &v in &values {
            b.observe("lat_ms", v);
            b.counter_add("n_total", 1);
        }
        prop_assert_eq!(a.render_prometheus(), b.render_prometheus());
    }
}
