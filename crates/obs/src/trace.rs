//! Recorders: the registry-only and in-memory recorders, the JSONL
//! [`TraceWriter`], and the trace validator the CI smoke runs.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;
use std::time::Instant;

use crate::registry::Registry;
use crate::{escape_json, stable_f64, Field, FieldValue, Recorder};

/// A [`Recorder`] that keeps only the metrics registry, dropping span
/// and point events. `quorumnet serve` installs one (absent `--trace`)
/// so the `metrics` protocol command always has an exposition to render.
#[derive(Default)]
pub struct RegistryRecorder {
    registry: Registry,
}

impl RegistryRecorder {
    /// A recorder over a fresh registry.
    #[must_use]
    pub fn new() -> Self {
        RegistryRecorder::default()
    }

    /// The backing registry.
    #[must_use]
    pub fn registry(&self) -> &Registry {
        &self.registry
    }
}

impl Recorder for RegistryRecorder {
    fn counter_add(&self, name: &str, by: u64) {
        self.registry.counter_add(name, by);
    }
    fn gauge_set(&self, name: &str, value: f64) {
        self.registry.gauge_set(name, value);
    }
    fn observe(&self, name: &str, value: f64) {
        self.registry.observe(name, value);
    }
    fn span_begin(&self, _name: &str, _fields: &[Field]) {}
    fn span_end(&self, _name: &str, _fields: &[Field]) {}
    fn point(&self, _name: &str, _fields: &[Field]) {}
    fn registry(&self) -> Option<&Registry> {
        Some(&self.registry)
    }
}

/// What kind of trace event a record is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEventKind {
    /// A span opened.
    SpanBegin,
    /// The innermost open span closed.
    SpanEnd,
    /// A point event.
    Point,
}

impl TraceEventKind {
    fn wire(self) -> &'static str {
        match self {
            TraceEventKind::SpanBegin => "span_begin",
            TraceEventKind::SpanEnd => "span_end",
            TraceEventKind::Point => "point",
        }
    }
}

/// An owned trace event, as buffered by [`InMemoryRecorder`].
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event kind.
    pub kind: TraceEventKind,
    /// Event name.
    pub name: String,
    /// Owned `(key, rendered-JSON-value)` pairs, in emission order.
    pub fields: Vec<(String, String)>,
}

fn render_value(v: &FieldValue<'_>) -> String {
    match v {
        FieldValue::U64(n) => n.to_string(),
        FieldValue::I64(n) => n.to_string(),
        FieldValue::F64(x) => stable_f64(*x),
        FieldValue::Bool(b) => b.to_string(),
        FieldValue::Str(s) => format!("\"{}\"", escape_json(s)),
    }
}

fn own_fields(fields: &[Field]) -> Vec<(String, String)> {
    fields
        .iter()
        .map(|(k, v)| ((*k).to_string(), render_value(v)))
        .collect()
}

/// A [`Recorder`] that buffers every event in memory alongside a
/// registry — the test and bench recorder.
#[derive(Default)]
pub struct InMemoryRecorder {
    registry: Registry,
    events: Mutex<Vec<TraceEvent>>,
}

impl InMemoryRecorder {
    /// A fresh in-memory recorder.
    #[must_use]
    pub fn new() -> Self {
        InMemoryRecorder::default()
    }

    /// The backing registry.
    #[must_use]
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Snapshot of the buffered events.
    #[must_use]
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().expect("event buffer poisoned").clone()
    }

    fn push(&self, kind: TraceEventKind, name: &str, fields: &[Field]) {
        self.events
            .lock()
            .expect("event buffer poisoned")
            .push(TraceEvent {
                kind,
                name: name.to_string(),
                fields: own_fields(fields),
            });
    }
}

impl Recorder for InMemoryRecorder {
    fn counter_add(&self, name: &str, by: u64) {
        self.registry.counter_add(name, by);
    }
    fn gauge_set(&self, name: &str, value: f64) {
        self.registry.gauge_set(name, value);
    }
    fn observe(&self, name: &str, value: f64) {
        self.registry.observe(name, value);
    }
    fn span_begin(&self, name: &str, fields: &[Field]) {
        self.push(TraceEventKind::SpanBegin, name, fields);
    }
    fn span_end(&self, name: &str, fields: &[Field]) {
        self.push(TraceEventKind::SpanEnd, name, fields);
    }
    fn point(&self, name: &str, fields: &[Field]) {
        self.push(TraceEventKind::Point, name, fields);
    }
    fn registry(&self) -> Option<&Registry> {
        Some(&self.registry)
    }
}

struct TraceOut {
    w: BufWriter<Box<dyn Write + Send>>,
    seq: u64,
    depth: u64,
    /// First write error, reported at [`TraceWriter::flush`]; later
    /// events are dropped rather than panicking mid-run.
    err: Option<io::Error>,
}

/// A [`Recorder`] that streams span/point events as JSONL alongside a
/// metrics registry — the `--trace FILE` sink.
///
/// One JSON object per line:
///
/// ```json
/// {"seq":4,"kind":"span_begin","name":"lp.solve","depth":1,"fields":{"warm":true}}
/// ```
///
/// `seq` increments per record; `depth` is the span-nesting depth the
/// record sits at (a `span_end` carries the depth of its matching
/// begin). Floats render `{:.17e}`. Events only ever arrive from the
/// main thread (the facade suppresses worker-context emission), so the
/// record order — and therefore the bytes — of a logical trace is
/// deterministic at any `--threads` count. With
/// [`TraceWriter::with_wall_clock`] every record additionally carries a
/// `"wall_ns"` stamp; wall stamps are nondeterministic by nature and are
/// excluded from the byte-identity contract, which is why they are
/// opt-in.
pub struct TraceWriter {
    registry: Registry,
    out: Mutex<TraceOut>,
    wall: Option<Instant>,
}

impl TraceWriter {
    /// A writer streaming to `w` (logical events only).
    #[must_use]
    pub fn new(w: Box<dyn Write + Send>) -> Self {
        TraceWriter {
            registry: Registry::new(),
            out: Mutex::new(TraceOut {
                w: BufWriter::new(w),
                seq: 0,
                depth: 0,
                err: None,
            }),
            wall: None,
        }
    }

    /// A writer streaming to the file at `path` (created/truncated).
    ///
    /// # Errors
    ///
    /// Any file-system failure creating the file.
    pub fn create(path: &Path) -> io::Result<Self> {
        Ok(TraceWriter::new(Box::new(File::create(path)?)))
    }

    /// Enables wall-clock stamping: every record gains a `"wall_ns"`
    /// field measured from this call. Wall stamps are tagged
    /// nondeterministic — never enable them for golden traces.
    #[must_use]
    pub fn with_wall_clock(mut self) -> Self {
        self.wall = Some(Instant::now());
        self
    }

    /// The backing registry.
    #[must_use]
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Flushes buffered records and surfaces the first write error, if
    /// any occurred.
    ///
    /// # Errors
    ///
    /// The first I/O failure encountered while writing or flushing.
    pub fn flush(&self) -> io::Result<()> {
        let mut g = self.out.lock().expect("trace writer poisoned");
        if let Some(e) = g.err.take() {
            return Err(e);
        }
        g.w.flush()
    }

    fn write_record(&self, kind: TraceEventKind, name: &str, fields: &[Field]) {
        let mut g = self.out.lock().expect("trace writer poisoned");
        if g.err.is_some() {
            return;
        }
        if kind == TraceEventKind::SpanEnd {
            // A stray end (span guard outliving a recorder swap) clamps
            // at zero rather than underflowing.
            g.depth = g.depth.saturating_sub(1);
        }
        g.seq += 1;
        let mut line = format!(
            "{{\"seq\":{},\"kind\":\"{}\",\"name\":\"{}\",\"depth\":{}",
            g.seq,
            kind.wire(),
            escape_json(name),
            g.depth
        );
        if let Some(start) = &self.wall {
            line.push_str(&format!(",\"wall_ns\":{}", start.elapsed().as_nanos()));
        }
        line.push_str(",\"fields\":{");
        for (i, (k, v)) in fields.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            line.push_str(&format!("\"{}\":{}", escape_json(k), render_value(v)));
        }
        line.push_str("}}\n");
        if kind == TraceEventKind::SpanBegin {
            g.depth += 1;
        }
        if let Err(e) = g.w.write_all(line.as_bytes()) {
            g.err = Some(e);
        }
    }
}

impl Recorder for TraceWriter {
    fn counter_add(&self, name: &str, by: u64) {
        self.registry.counter_add(name, by);
    }
    fn gauge_set(&self, name: &str, value: f64) {
        self.registry.gauge_set(name, value);
    }
    fn observe(&self, name: &str, value: f64) {
        self.registry.observe(name, value);
    }
    fn span_begin(&self, name: &str, fields: &[Field]) {
        self.write_record(TraceEventKind::SpanBegin, name, fields);
    }
    fn span_end(&self, name: &str, fields: &[Field]) {
        self.write_record(TraceEventKind::SpanEnd, name, fields);
    }
    fn point(&self, name: &str, fields: &[Field]) {
        self.write_record(TraceEventKind::Point, name, fields);
    }
    fn registry(&self) -> Option<&Registry> {
        Some(&self.registry)
    }
}

/// A trace-validation failure: the 1-based line and what went wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError {
    /// 1-based line number (0 for whole-trace failures).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line > 0 {
            write!(f, "trace line {}: {}", self.line, self.message)
        } else {
            write!(f, "trace: {}", self.message)
        }
    }
}

impl std::error::Error for TraceError {}

/// Validates a JSONL trace: every line is one syntactically-valid JSON
/// object, and span nesting is monotone — every `span_end` matches the
/// innermost open `span_begin` by name and depth, and the trace ends
/// with every span closed. This is the CI smoke assertion
/// (`quorumnet trace-check`).
///
/// # Errors
///
/// [`TraceError`] naming the first offending line.
pub fn validate_trace(text: &str) -> Result<(), TraceError> {
    let mut stack: Vec<String> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        let fail = |message: String| TraceError {
            line: lineno,
            message,
        };
        let mut p = Json::new(line);
        p.value().map_err(&fail)?;
        p.skip_ws();
        if !p.at_end() {
            return Err(fail("trailing content after JSON object".into()));
        }
        if !line.starts_with('{') {
            return Err(fail("record is not a JSON object".into()));
        }
        let kind = scan_string_field(line, "kind").ok_or_else(|| fail("missing `kind`".into()))?;
        let name = scan_string_field(line, "name").ok_or_else(|| fail("missing `name`".into()))?;
        let depth = scan_u64_field(line, "depth").ok_or_else(|| fail("missing `depth`".into()))?;
        match kind.as_str() {
            "span_begin" => {
                if depth as usize != stack.len() {
                    return Err(fail(format!(
                        "span_begin at depth {depth}, expected {}",
                        stack.len()
                    )));
                }
                stack.push(name);
            }
            "span_end" => {
                let open = stack
                    .pop()
                    .ok_or_else(|| fail(format!("span_end `{name}` with no open span")))?;
                if open != name {
                    return Err(fail(format!(
                        "span_end `{name}` does not match open span `{open}`"
                    )));
                }
                if depth as usize != stack.len() {
                    return Err(fail(format!(
                        "span_end at depth {depth}, expected {}",
                        stack.len()
                    )));
                }
            }
            "point" => {
                if depth as usize != stack.len() {
                    return Err(fail(format!(
                        "point at depth {depth}, expected {}",
                        stack.len()
                    )));
                }
            }
            other => return Err(fail(format!("unknown kind `{other}`"))),
        }
    }
    if let Some(open) = stack.last() {
        return Err(TraceError {
            line: 0,
            message: format!("trace ends with span `{open}` still open"),
        });
    }
    Ok(())
}

/// Extracts the string value of a top-level `"key":"value"` pair by
/// scanning (the writer pins field order, but scanning by key keeps the
/// validator independent of it).
fn scan_string_field(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\":\"");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let mut out = String::new();
    let mut chars = rest.chars();
    loop {
        match chars.next()? {
            '\\' => {
                let c = chars.next()?;
                out.push(match c {
                    'n' => '\n',
                    'r' => '\r',
                    't' => '\t',
                    other => other,
                });
            }
            '"' => return Some(out),
            c => out.push(c),
        }
    }
}

fn scan_u64_field(line: &str, key: &str) -> Option<u64> {
    let tag = format!("\"{key}\":");
    let start = line.find(&tag)? + tag.len();
    let digits: String = line[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// A minimal strict JSON syntax checker (values only, no tree built).
struct Json<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Json<'a> {
    fn new(s: &'a str) -> Self {
        Json {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", char::from(b), self.pos))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("expected a JSON value at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.pos += 2;
                }
                Some(_) => self.pos += 1,
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(format!("malformed number at byte {start}"));
        }
        Ok(())
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(format!("malformed literal at byte {}", self.pos))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace_of(f: impl FnOnce(&TraceWriter)) -> String {
        let buf: std::sync::Arc<Mutex<Vec<u8>>> = std::sync::Arc::default();
        struct Sink(std::sync::Arc<Mutex<Vec<u8>>>);
        impl Write for Sink {
            fn write(&mut self, b: &[u8]) -> io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let w = TraceWriter::new(Box::new(Sink(buf.clone())));
        f(&w);
        w.flush().unwrap();
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        text
    }

    #[test]
    fn writer_emits_valid_nested_trace() {
        let text = trace_of(|w| {
            w.span_begin("outer", &[("spec", FieldValue::Str("alpha"))]);
            w.span_begin("inner", &[]);
            w.point("tick", &[("n", FieldValue::U64(7))]);
            w.span_end("inner", &[("pivots", FieldValue::U64(12))]);
            w.span_end("outer", &[("ok", FieldValue::Bool(true))]);
            w.point("value", &[("x", FieldValue::F64(1.5))]);
        });
        validate_trace(&text).unwrap();
        assert_eq!(text.lines().count(), 6);
        assert!(text.contains(&format!("\"x\":{}", stable_f64(1.5))));
        assert!(text.contains("\"depth\":1"));
    }

    #[test]
    fn validator_rejects_broken_nesting_and_bad_json() {
        let unbalanced = trace_of(|w| {
            w.span_begin("outer", &[]);
        });
        let err = validate_trace(&unbalanced).unwrap_err();
        assert!(err.message.contains("still open"), "{err}");

        let crossed = concat!(
            "{\"seq\":1,\"kind\":\"span_begin\",\"name\":\"a\",\"depth\":0,\"fields\":{}}\n",
            "{\"seq\":2,\"kind\":\"span_end\",\"name\":\"b\",\"depth\":0,\"fields\":{}}\n",
        );
        let err = validate_trace(crossed).unwrap_err();
        assert!(err.message.contains("does not match"), "{err}");

        let err = validate_trace("{\"seq\":1,").unwrap_err();
        assert_eq!(err.line, 1);
        let err = validate_trace("not json\n").unwrap_err();
        assert_eq!(err.line, 1);
    }

    #[test]
    fn registry_recorder_keeps_metrics_only() {
        let r = RegistryRecorder::new();
        r.counter_add("c", 1);
        r.span_begin("s", &[]);
        r.span_end("s", &[]);
        assert_eq!(r.registry().counter("c"), 1);
    }
}
