//! `qp-obs` — the workspace's unified observability layer: deterministic
//! counters, gauges, and log-bucketed histograms; span-based phase
//! traces; and a Prometheus-style text exposition.
//!
//! Every other crate instruments itself through the free functions in
//! this module ([`counter_add`], [`gauge_set`], [`observe`], [`span`],
//! [`point`]). By default **no recorder is installed** and every call is
//! a single relaxed atomic load — the no-op path, which keeps every
//! golden output bit-identical and costs nothing measurable (see the
//! `obs_overhead` bench group). A caller that wants data installs a
//! [`Recorder`] for the duration of a run:
//!
//! * [`RegistryRecorder`] — counters/gauges/histograms only (what
//!   `quorumnet serve` installs so the `metrics` protocol command has
//!   something to render),
//! * [`InMemoryRecorder`] — a registry plus an event buffer, for tests
//!   and benches,
//! * [`TraceWriter`] — a registry plus a JSONL span trace with
//!   `{:.17e}`-stable float rendering (`quorumnet --trace FILE`).
//!
//! # The determinism contract (logical vs wall-clock)
//!
//! Counters, histograms, and span/point events carry **logical**
//! quantities only: pivot counts, simulated milliseconds, event counts —
//! things that are a pure function of the inputs and seed. Two
//! disciplines make the whole layer deterministic at any thread count:
//!
//! 1. **Counters and histograms commute.** Increments are order-free
//!    sums; histogram sums accumulate in fixed-point integers
//!    ([`Histogram`]), so parallel observation in any interleaving
//!    produces bit-identical totals and the rendered exposition is
//!    sorted by name.
//! 2. **Span and point events are main-thread-only.** Worker threads run
//!    inside [`worker_scope`] (qp-par wraps every pool job, including
//!    the inline serial fallback, so `--threads 1` and `--threads 4`
//!    agree), which suppresses event emission; worker-side results reach
//!    the trace through reports merged in deterministic order instead.
//!
//! Wall-clock timings are **opt-in and tagged**: histogram names carry a
//! `_wall_` segment (e.g. `quorumd_delta_wall_ms`) and the
//! [`TraceWriter`] only stamps `wall_ns` fields when explicitly enabled
//! — they never appear in golden traces.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod registry;
mod trace;

pub use registry::{Histogram, Registry, HIST_BUCKETS};
pub use trace::{
    validate_trace, InMemoryRecorder, RegistryRecorder, TraceError, TraceEvent, TraceEventKind,
    TraceWriter,
};

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};

/// One structured field on a span or point event.
pub type Field<'a> = (&'a str, FieldValue<'a>);

/// A field value: the closed set of JSON-renderable scalars the trace
/// schema admits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FieldValue<'a> {
    /// Unsigned integer (counts, sequence numbers).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float, rendered `{:.17e}` (non-finite renders as `null`).
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String, JSON-escaped.
    Str(&'a str),
}

/// The sink instrumentation flows into. All methods take `&self`: a
/// recorder is shared across threads for the duration of a run.
///
/// Counter/gauge/histogram methods may be called from any thread; span
/// and point events only ever arrive from outside [`worker_scope`] (the
/// facade enforces this), so implementations may assume events are
/// serialized.
pub trait Recorder: Send + Sync {
    /// Adds `by` to the named monotone counter.
    fn counter_add(&self, name: &str, by: u64);
    /// Sets the named gauge to `value`.
    fn gauge_set(&self, name: &str, value: f64);
    /// Records one observation into the named histogram.
    fn observe(&self, name: &str, value: f64);
    /// Opens a span.
    fn span_begin(&self, name: &str, fields: &[Field]);
    /// Closes the innermost open span.
    fn span_end(&self, name: &str, fields: &[Field]);
    /// Emits a point event.
    fn point(&self, name: &str, fields: &[Field]);
    /// The recorder's metrics registry, when it keeps one (used by the
    /// daemon's `metrics` command to render the exposition).
    fn registry(&self) -> Option<&Registry> {
        None
    }
}

/// Fast-path flag: `true` iff a recorder is installed.
static ENABLED: AtomicBool = AtomicBool::new(false);
/// The installed recorder. The `RwLock` is only contended at
/// install/uninstall; steady-state reads are shared.
static RECORDER: RwLock<Option<Arc<dyn Recorder>>> = RwLock::new(None);

thread_local! {
    /// Depth of nested [`worker_scope`] calls on this thread.
    static WORKER_DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// Installs `recorder` as the process-global sink, replacing any
/// previous one. Instrumentation is process-global state (like
/// `qp_par::configure_threads`): callers that install per-run must
/// serialize runs.
pub fn install(recorder: Arc<dyn Recorder>) {
    *RECORDER.write().expect("recorder lock poisoned") = Some(recorder);
    ENABLED.store(true, Ordering::Release);
}

/// Uninstalls and returns the current recorder, restoring the no-op
/// default.
pub fn uninstall() -> Option<Arc<dyn Recorder>> {
    ENABLED.store(false, Ordering::Release);
    RECORDER.write().expect("recorder lock poisoned").take()
}

/// Whether a recorder is installed — the single-atomic-load fast path
/// every instrumentation site checks first.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Acquire)
}

/// Runs `f` with the installed recorder, if any.
#[inline]
fn with<R>(f: impl FnOnce(&dyn Recorder) -> R) -> Option<R> {
    if !enabled() {
        return None;
    }
    let guard = RECORDER.read().expect("recorder lock poisoned");
    guard.as_deref().map(f)
}

/// Runs `f` with the installed recorder's [`Registry`], if the recorder
/// keeps one.
pub fn with_registry<R>(f: impl FnOnce(&Registry) -> R) -> Option<R> {
    with(|r| r.registry().map(f)).flatten()
}

/// Runs `f` in worker context: span/point emission is suppressed inside
/// (counters and histograms still record). `qp-par` wraps every pool
/// job in this — on worker threads *and* on the inline serial path — so
/// traces are identical at any thread count.
pub fn worker_scope<R>(f: impl FnOnce() -> R) -> R {
    WORKER_DEPTH.with(|d| d.set(d.get() + 1));
    // A panicking job would leave the depth raised on a pooled thread;
    // qp-par propagates job panics to the caller, and the guard keeps
    // the thread-local correct either way.
    struct Reset;
    impl Drop for Reset {
        fn drop(&mut self) {
            WORKER_DEPTH.with(|d| d.set(d.get() - 1));
        }
    }
    let _reset = Reset;
    f()
}

/// Whether this thread is inside a [`worker_scope`].
#[inline]
pub fn in_worker() -> bool {
    WORKER_DEPTH.with(Cell::get) > 0
}

/// Adds `by` to a monotone counter (no-op without a recorder).
#[inline]
pub fn counter_add(name: &str, by: u64) {
    if enabled() {
        with(|r| r.counter_add(name, by));
    }
}

/// Sets a gauge (no-op without a recorder).
#[inline]
pub fn gauge_set(name: &str, value: f64) {
    if enabled() {
        with(|r| r.gauge_set(name, value));
    }
}

/// Records one histogram observation (no-op without a recorder).
#[inline]
pub fn observe(name: &str, value: f64) {
    if enabled() {
        with(|r| r.observe(name, value));
    }
}

/// Emits a point event (no-op without a recorder or inside
/// [`worker_scope`]).
#[inline]
pub fn point(name: &str, fields: &[Field]) {
    if enabled() && !in_worker() {
        with(|r| r.point(name, fields));
    }
}

/// Opens a span and returns its guard. The span closes when the guard's
/// [`Span::end`] is called (attaching result fields) or when it is
/// dropped. Emission is suppressed without a recorder or inside
/// [`worker_scope`]; suppression is latched at open so a begin is never
/// left unbalanced.
pub fn span(name: &'static str, fields: &[Field]) -> Span {
    let active = enabled() && !in_worker();
    if active {
        with(|r| r.span_begin(name, fields));
    }
    Span { name, active }
}

/// Guard for an open span; see [`span`].
#[must_use = "dropping the guard immediately closes the span"]
pub struct Span {
    name: &'static str,
    active: bool,
}

impl Span {
    /// Closes the span, attaching `fields` to the end event.
    pub fn end(mut self, fields: &[Field]) {
        if self.active {
            with(|r| r.span_end(self.name, fields));
            self.active = false;
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.active {
            with(|r| r.span_end(self.name, &[]));
        }
    }
}

/// Renders a float the way every stable surface in this workspace does:
/// `{:.17e}` round-trips any finite `f64` bit-exactly; non-finite values
/// render as `null` (JSON has no NaN/Infinity).
#[must_use]
pub fn stable_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.17e}")
    } else {
        "null".to_string()
    }
}

/// JSON-escapes `s` (the same escaping the scenario checkpoint encoder
/// uses).
#[must_use]
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The recorder is process-global; tests that touch it serialize here.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_facade_is_inert() {
        let _g = TEST_LOCK.lock().unwrap();
        assert!(uninstall().is_none());
        assert!(!enabled());
        counter_add("x", 3);
        gauge_set("g", 1.0);
        observe("h", 2.0);
        point("p", &[("k", FieldValue::U64(1))]);
        let s = span("s", &[]);
        s.end(&[("done", FieldValue::Bool(true))]);
        assert!(with_registry(|r| r.render_prometheus()).is_none());
    }

    #[test]
    fn worker_scope_suppresses_events_but_not_counters() {
        let _g = TEST_LOCK.lock().unwrap();
        let rec = Arc::new(InMemoryRecorder::new());
        install(rec.clone());
        worker_scope(|| {
            assert!(in_worker());
            counter_add("jobs", 2);
            point("hidden", &[]);
            let sp = span("hidden_span", &[]);
            sp.end(&[]);
        });
        assert!(!in_worker());
        point("visible", &[]);
        uninstall();
        assert_eq!(rec.registry().counter("jobs"), 2);
        let events = rec.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "visible");
    }

    #[test]
    fn stable_f64_matches_wire_style() {
        assert_eq!(stable_f64(1.5), format!("{:.17e}", 1.5));
        assert_eq!(stable_f64(f64::NAN), "null");
    }
}
