//! The metrics registry: counters, gauges, and log-bucketed histograms,
//! with a deterministic Prometheus-style text exposition.

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::stable_f64;

/// Number of histogram buckets. Bucket `i` covers
/// `(bound(i-1), bound(i)]` with `bound(i) = 2^(i - 26)` — from
/// ~1.5e-8 up to ~1.4e11, which spans sub-microsecond service times to
/// multi-day horizons when values are in milliseconds. The final bucket
/// is the overflow (`+Inf`) bucket.
pub const HIST_BUCKETS: usize = 64;

/// Exponent offset: `bound(i) = 2^(i - BUCKET_EXP_OFFSET)`.
const BUCKET_EXP_OFFSET: i32 = 26;

/// Fixed-point scale for histogram sums: values accumulate in units of
/// `2^-12`. Integer addition is exactly associative and commutative, so
/// parallel observation and merges in any order produce bit-identical
/// sums — the property the whole determinism contract leans on.
const SUM_FP_BITS: u32 = 12;

/// Upper bound of bucket `i` (a power of two, exact in `f64`).
fn bucket_bound(i: usize) -> f64 {
    f64::powi(2.0, i as i32 - BUCKET_EXP_OFFSET)
}

/// A mergeable log-bucketed histogram of nonnegative values.
///
/// Counts land in power-of-two buckets; the sum accumulates in
/// fixed-point (`2^-12` units), so [`Histogram::merge`] is
/// order-invariant and count-preserving bit-for-bit — there is a
/// proptest pinning exactly that. Negative observations clamp to 0;
/// non-finite observations are dropped.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    counts: [u64; HIST_BUCKETS],
    count: u64,
    sum_fp: u128,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [0; HIST_BUCKETS],
            count: 0,
            sum_fp: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one observation. Negative values clamp to 0; non-finite
    /// values are dropped.
    pub fn observe(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        let v = value.max(0.0);
        let idx = self.bucket_index(v);
        self.counts[idx] += 1;
        self.count += 1;
        // Round-to-nearest fixed-point; saturate rather than wrap on
        // absurd magnitudes (~3e29 ms before u128 strain at this scale).
        let fp = (v * f64::powi(2.0, SUM_FP_BITS as i32)).round();
        self.sum_fp = self.sum_fp.saturating_add(fp as u128);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    fn bucket_index(&self, v: f64) -> usize {
        // First bucket whose upper bound contains v; the last bucket is
        // the overflow. partition_point over exact powers of two is
        // deterministic for every input.
        (0..HIST_BUCKETS - 1)
            .position(|i| v <= bucket_bound(i))
            .unwrap_or(HIST_BUCKETS - 1)
    }

    /// Folds `other` into `self`. Exact: merging any permutation of
    /// parts yields bit-identical state.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum_fp = self.sum_fp.saturating_add(other.sum_fp);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Total observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations (fixed-point, so deterministic; resolution
    /// `2^-12` per observation).
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum_fp as f64 / f64::powi(2.0, SUM_FP_BITS as i32)
    }

    /// Smallest observation (`None` when empty).
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Upper bound of the bucket containing the `q`-quantile (0 ≤ q ≤ 1)
    /// — a deterministic, conservative estimate. `None` when empty.
    #[must_use]
    pub fn quantile_bound(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_bound(i).min(self.max));
            }
        }
        Some(self.max)
    }

    /// Non-empty buckets as `(upper_bound, cumulative_count)` pairs.
    pub fn cumulative_buckets(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        let mut cum = 0;
        self.counts.iter().enumerate().filter_map(move |(i, &c)| {
            cum += c;
            (c > 0).then_some((bucket_bound(i), cum))
        })
    }
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    hists: BTreeMap<String, Histogram>,
}

/// A thread-safe collection of named counters, gauges, and histograms.
///
/// Counter and histogram updates commute, so totals are deterministic
/// regardless of thread interleaving; [`Registry::render_prometheus`]
/// renders sorted by name with `{:.17e}` floats, so the exposition of a
/// deterministic workload is byte-stable.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().expect("registry lock poisoned")
    }

    /// Adds `by` to the named counter (created at 0).
    pub fn counter_add(&self, name: &str, by: u64) {
        let mut g = self.lock();
        match g.counters.get_mut(name) {
            Some(v) => *v += by,
            None => {
                g.counters.insert(name.to_string(), by);
            }
        }
    }

    /// Sets the named gauge.
    pub fn gauge_set(&self, name: &str, value: f64) {
        self.lock().gauges.insert(name.to_string(), value);
    }

    /// Records one observation into the named histogram.
    pub fn observe(&self, name: &str, value: f64) {
        let mut g = self.lock();
        match g.hists.get_mut(name) {
            Some(h) => h.observe(value),
            None => {
                let mut h = Histogram::new();
                h.observe(value);
                g.hists.insert(name.to_string(), h);
            }
        }
    }

    /// Current value of a counter (0 when absent).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of a gauge.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.lock().gauges.get(name).copied()
    }

    /// Snapshot of a histogram.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.lock().hists.get(name).cloned()
    }

    /// Drops every metric (tests).
    pub fn clear(&self) {
        let mut g = self.lock();
        g.counters.clear();
        g.gauges.clear();
        g.hists.clear();
    }

    /// Renders the Prometheus-style text exposition: for each metric,
    /// sorted by name, a `# TYPE` line then the sample lines. Histograms
    /// render non-empty buckets as cumulative `_bucket{le="…"}` samples
    /// plus `_bucket{le="+Inf"}`, `_sum`, and `_count`. Floats are
    /// `{:.17e}`, so the exposition of a deterministic workload is
    /// byte-stable.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        let g = self.lock();
        let mut out = String::new();
        for (name, v) in &g.counters {
            out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
        }
        for (name, v) in &g.gauges {
            out.push_str(&format!("# TYPE {name} gauge\n{name} {}\n", stable_f64(*v)));
        }
        for (name, h) in &g.hists {
            out.push_str(&format!("# TYPE {name} histogram\n"));
            for (bound, cum) in h.cumulative_buckets() {
                out.push_str(&format!(
                    "{name}_bucket{{le=\"{}\"}} {cum}\n",
                    stable_f64(bound)
                ));
            }
            out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count()));
            out.push_str(&format!("{name}_sum {}\n", stable_f64(h.sum())));
            out.push_str(&format!("{name}_count {}\n", h.count()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log_spaced_and_cover_extremes() {
        let mut h = Histogram::new();
        h.observe(0.0);
        h.observe(1e-12); // below the first bound → bucket 0
        h.observe(1.0);
        h.observe(3.0);
        h.observe(1e30); // overflow bucket
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), Some(0.0));
        assert_eq!(h.max(), Some(1e30));
        let buckets: Vec<_> = h.cumulative_buckets().collect();
        assert_eq!(buckets.last().unwrap().1, 5);
        // 1.0 lands in the bucket bounded by exactly 1.0 (2^0).
        assert!(buckets.iter().any(|&(b, _)| b == 1.0));
    }

    #[test]
    fn merge_is_exact() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for (i, v) in [0.5, 12.25, 700.0, 0.001, 3.5e6].iter().enumerate() {
            if i % 2 == 0 {
                a.observe(*v);
            } else {
                b.observe(*v);
            }
            whole.observe(*v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab, whole);
    }

    #[test]
    fn quantile_bound_brackets_the_data() {
        let mut h = Histogram::new();
        for i in 1..=100 {
            h.observe(f64::from(i));
        }
        let p50 = h.quantile_bound(0.5).unwrap();
        assert!((50.0..=64.0).contains(&p50), "{p50}");
        assert_eq!(h.quantile_bound(1.0), Some(100.0));
    }

    #[test]
    fn exposition_is_sorted_and_stable() {
        let r = Registry::new();
        r.counter_add("b_total", 2);
        r.counter_add("a_total", 1);
        r.gauge_set("g", 0.5);
        r.observe("h_ms", 3.0);
        let text = r.render_prometheus();
        let a = text.find("a_total").unwrap();
        let b = text.find("b_total").unwrap();
        assert!(a < b, "sorted by name");
        assert!(text.contains("# TYPE h_ms histogram"));
        assert!(text.contains("h_ms_count 1"));
        assert!(text.contains(&format!("g {}", stable_f64(0.5))));
        assert_eq!(text, r.render_prometheus());
    }
}
