//! Graph-analysis primitives used by the placement algorithms: balls,
//! medians, and average-distance vectors.

use crate::{DistanceMatrix, NodeId};

/// The `n` nodes closest to `v` (including `v`), ordered by increasing
/// distance; ties broken by node index.
///
/// This is the ball `B(v, n)` used by the Majority one-to-one placement of
/// §4.1.1.
///
/// # Panics
///
/// Panics if `n` exceeds the number of nodes or `v` is out of range.
pub fn ball(dist: &DistanceMatrix, v: NodeId, n: usize) -> Vec<NodeId> {
    assert!(
        n <= dist.len(),
        "ball size {n} exceeds node count {}",
        dist.len()
    );
    let row = dist.row(v);
    let mut order: Vec<usize> = (0..dist.len()).collect();
    order.sort_by(|&a, &b| {
        row[a]
            .partial_cmp(&row[b])
            .expect("distances are finite")
            .then_with(|| a.cmp(&b))
    });
    order.truncate(n);
    order.into_iter().map(NodeId::new).collect()
}

/// The node minimizing the *sum* of distances to all nodes — the graph
/// median (§4.1.2, "Singleton placement"). Ties broken by node index.
///
/// # Panics
///
/// Panics if the matrix is empty.
pub fn median(dist: &DistanceMatrix) -> NodeId {
    assert!(!dist.is_empty(), "median of an empty network");
    let mut best = 0;
    let mut best_sum = f64::INFINITY;
    for i in 0..dist.len() {
        let s: f64 = dist.row(NodeId::new(i)).iter().sum();
        if s < best_sum {
            best_sum = s;
            best = i;
        }
    }
    NodeId::new(best)
}

/// The node minimizing the *weighted* sum of distances to all nodes, for a
/// non-uniform client population (weight = share of demand originating at
/// each node). Ties broken by node index.
///
/// # Panics
///
/// Panics if the matrix is empty or `weights.len() != dist.len()`.
pub fn weighted_median(dist: &DistanceMatrix, weights: &[f64]) -> NodeId {
    assert!(!dist.is_empty(), "median of an empty network");
    assert_eq!(weights.len(), dist.len(), "one weight per node required");
    let mut best = 0;
    let mut best_sum = f64::INFINITY;
    for i in 0..dist.len() {
        let s: f64 = dist
            .row(NodeId::new(i))
            .iter()
            .zip(weights)
            .map(|(d, w)| d * w)
            .sum();
        if s < best_sum {
            best_sum = s;
            best = i;
        }
    }
    NodeId::new(best)
}

/// For every node `i`, the average distance `s_i` from all nodes of the
/// graph to `i` (§7, non-uniform capacity heuristic).
pub fn average_distances(dist: &DistanceMatrix) -> Vec<f64> {
    let n = dist.len();
    if n == 0 {
        return Vec::new();
    }
    (0..n)
        .map(|i| dist.row(NodeId::new(i)).iter().sum::<f64>() / n as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line4() -> DistanceMatrix {
        // nodes 0-1-2-3 at unit spacing
        DistanceMatrix::from_rows(&[
            vec![0.0, 1.0, 2.0, 3.0],
            vec![1.0, 0.0, 1.0, 2.0],
            vec![2.0, 1.0, 0.0, 1.0],
            vec![3.0, 2.0, 1.0, 0.0],
        ])
        .unwrap()
    }

    #[test]
    fn ball_includes_self_first() {
        let d = line4();
        let b = ball(&d, NodeId::new(3), 3);
        assert_eq!(b, vec![NodeId::new(3), NodeId::new(2), NodeId::new(1)]);
    }

    #[test]
    fn ball_tie_breaks_by_index() {
        let d = line4();
        // From node 1: nodes 0 and 2 are both at distance 1; 0 comes first.
        let b = ball(&d, NodeId::new(1), 3);
        assert_eq!(b, vec![NodeId::new(1), NodeId::new(0), NodeId::new(2)]);
    }

    #[test]
    fn median_of_line4_is_inner_node() {
        // Sums: node0=6, node1=4, node2=4, node3=6; tie between 1 and 2
        // broken toward 1.
        assert_eq!(median(&line4()), NodeId::new(1));
    }

    #[test]
    fn weighted_median_follows_weights() {
        let d = line4();
        // All demand at node 3 drags the median there.
        assert_eq!(weighted_median(&d, &[0.0, 0.0, 0.0, 1.0]), NodeId::new(3));
        // Uniform weights agree with the unweighted median.
        assert_eq!(weighted_median(&d, &[1.0; 4]), median(&d));
    }

    #[test]
    fn average_distances_of_line4() {
        let s = average_distances(&line4());
        assert_eq!(s, vec![1.5, 1.0, 1.0, 1.5]);
    }

    #[test]
    fn average_distances_empty() {
        let d = DistanceMatrix::from_rows(&[]).unwrap();
        assert!(average_distances(&d).is_empty());
    }
}
