//! Wide-area network topology substrate for quorum placement.
//!
//! This crate models the network exactly as the paper does (§4, "Network"):
//! an undirected graph `G = (V, E)` with a positive length per edge, which
//! induces a distance function `d : V × V → R+` via shortest paths. All
//! placement and strategy-optimization algorithms consume only the induced
//! [`DistanceMatrix`], so the crate also provides direct matrix constructors
//! for measurement-style data (complete RTT matrices), together with a
//! *metric closure* operation that repairs triangle-inequality violations the
//! way shortest-path routing would.
//!
//! Two synthetic datasets stand in for the paper's measurement data (see
//! `DESIGN.md` for the substitution argument):
//!
//! * [`datasets::planetlab_50`] — 50 wide-area sites, in the spirit of the
//!   paper's "Planetlab-50" ping dataset;
//! * [`datasets::daxlist_161`] — 161 sites, in the spirit of "daxlist-161"
//!   (King latency estimates between web servers).
//!
//! # Examples
//!
//! ```
//! use qp_topology::datasets;
//!
//! let net = datasets::planetlab_50();
//! assert_eq!(net.len(), 50);
//! // Distances are a metric: symmetric, zero diagonal, triangle inequality.
//! assert!(net.distances().is_metric(1e-9));
//! let median = net.median();
//! assert!(median.index() < 50);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
pub mod datasets;
mod distance;
mod error;
mod graph;
pub mod io;
mod node;

pub use analysis::{average_distances, ball, median, weighted_median};
pub use distance::DistanceMatrix;
pub use error::TopologyError;
pub use graph::{Edge, Graph};
pub use node::NodeId;

/// A wide-area network: a set of sites plus the metric of round-trip delays
/// between them.
///
/// `Network` is the type every placement algorithm consumes. It couples a
/// [`DistanceMatrix`] (always a true metric — construction enforces metric
/// closure) with optional site labels, and exposes the graph-analysis
/// primitives the paper's algorithms need: balls `B(v, n)`, the graph
/// median, and per-node average distances.
///
/// # Examples
///
/// ```
/// use qp_topology::{DistanceMatrix, Network};
///
/// // A 3-site triangle with one slow long-haul link.
/// let m = DistanceMatrix::from_rows(&[
///     vec![0.0, 10.0, 80.0],
///     vec![10.0, 0.0, 75.0],
///     vec![80.0, 75.0, 0.0],
/// ]).unwrap();
/// let net = Network::from_distances(m);
/// assert_eq!(net.len(), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Network {
    dist: DistanceMatrix,
    labels: Vec<String>,
}

impl Network {
    /// Builds a network from a distance matrix, applying metric closure.
    ///
    /// Measured RTT matrices routinely violate the triangle inequality
    /// (detour routing); shortest-path semantics (the paper's `d` is a
    /// shortest-path distance) repair this, so the closure is always applied.
    pub fn from_distances(dist: DistanceMatrix) -> Self {
        let closed = dist.metric_closure();
        let labels = (0..closed.len()).map(|i| format!("site-{i}")).collect();
        Network {
            dist: closed,
            labels,
        }
    }

    /// Builds a network from a sparse weighted graph via all-pairs shortest
    /// paths.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::Disconnected`] if some pair of nodes has no
    /// connecting path.
    pub fn from_graph(graph: &Graph) -> Result<Self, TopologyError> {
        let dist = graph.all_pairs_shortest_paths()?;
        Ok(Network::from_distances(dist))
    }

    /// Builds a network from a distance matrix and per-site labels.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::LabelCount`] if `labels.len()` differs from
    /// the matrix dimension.
    pub fn with_labels(dist: DistanceMatrix, labels: Vec<String>) -> Result<Self, TopologyError> {
        if labels.len() != dist.len() {
            return Err(TopologyError::LabelCount {
                expected: dist.len(),
                actual: labels.len(),
            });
        }
        let mut net = Network::from_distances(dist);
        net.labels = labels;
        Ok(net)
    }

    /// Number of sites.
    pub fn len(&self) -> usize {
        self.dist.len()
    }

    /// Whether the network has no sites.
    pub fn is_empty(&self) -> bool {
        self.dist.len() == 0
    }

    /// The round-trip distance between two sites, in milliseconds.
    pub fn distance(&self, a: NodeId, b: NodeId) -> f64 {
        self.dist.get(a, b)
    }

    /// The underlying distance matrix.
    pub fn distances(&self) -> &DistanceMatrix {
        &self.dist
    }

    /// The label of a site.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn label(&self, v: NodeId) -> &str {
        &self.labels[v.index()]
    }

    /// Iterator over all node identifiers, in index order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + Clone {
        (0..self.len()).map(NodeId::new)
    }

    /// The `n` sites closest to `v` (including `v` itself), i.e. the ball
    /// `B(v, n)` of §4.1.1, ordered by increasing distance from `v`.
    ///
    /// Ties are broken by node index so the result is deterministic.
    ///
    /// # Panics
    ///
    /// Panics if `n > self.len()`.
    pub fn ball(&self, v: NodeId, n: usize) -> Vec<NodeId> {
        ball(&self.dist, v, n)
    }

    /// The median of the graph: the node minimizing the sum of distances
    /// from all sites (all sites are clients, as in the paper).
    ///
    /// # Panics
    ///
    /// Panics if the network is empty.
    pub fn median(&self) -> NodeId {
        median(&self.dist)
    }

    /// Average distance from every node to all nodes of the graph
    /// (`s_i` in §7's non-uniform capacity heuristic).
    pub fn average_distances(&self) -> Vec<f64> {
        average_distances(&self.dist)
    }

    /// Restricts the network to a subset of sites, renumbering nodes in the
    /// order given.
    ///
    /// # Panics
    ///
    /// Panics if any node is out of range or `subset` contains duplicates.
    pub fn subnetwork(&self, subset: &[NodeId]) -> Network {
        let mut seen = vec![false; self.len()];
        for &v in subset {
            assert!(
                !std::mem::replace(&mut seen[v.index()], true),
                "duplicate node {v} in subset"
            );
        }
        let k = subset.len();
        let mut rows = vec![vec![0.0; k]; k];
        for (i, &a) in subset.iter().enumerate() {
            for (j, &b) in subset.iter().enumerate() {
                rows[i][j] = self.dist.get(a, b);
            }
        }
        let dist = DistanceMatrix::from_rows(&rows).expect("square by construction");
        let labels = subset
            .iter()
            .map(|&v| self.labels[v.index()].clone())
            .collect();
        Network {
            dist: dist.metric_closure(),
            labels,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line3() -> Network {
        // 0 --10-- 1 --20-- 2
        let mut g = Graph::new(3);
        g.add_edge(NodeId::new(0), NodeId::new(1), 10.0).unwrap();
        g.add_edge(NodeId::new(1), NodeId::new(2), 20.0).unwrap();
        Network::from_graph(&g).unwrap()
    }

    #[test]
    fn from_graph_computes_shortest_paths() {
        let net = line3();
        assert_eq!(net.distance(NodeId::new(0), NodeId::new(2)), 30.0);
        assert_eq!(net.distance(NodeId::new(2), NodeId::new(0)), 30.0);
        assert_eq!(net.distance(NodeId::new(1), NodeId::new(1)), 0.0);
    }

    #[test]
    fn from_distances_applies_metric_closure() {
        // Direct 0-2 edge (100) is slower than the 0-1-2 detour (30).
        let m = DistanceMatrix::from_rows(&[
            vec![0.0, 10.0, 100.0],
            vec![10.0, 0.0, 20.0],
            vec![100.0, 20.0, 0.0],
        ])
        .unwrap();
        let net = Network::from_distances(m);
        assert_eq!(net.distance(NodeId::new(0), NodeId::new(2)), 30.0);
    }

    #[test]
    fn ball_orders_by_distance() {
        let net = line3();
        assert_eq!(
            net.ball(NodeId::new(2), 2),
            vec![NodeId::new(2), NodeId::new(1)]
        );
        assert_eq!(
            net.ball(NodeId::new(0), 3),
            vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)]
        );
    }

    #[test]
    fn median_of_line_is_middle() {
        let net = line3();
        assert_eq!(net.median(), NodeId::new(1));
    }

    #[test]
    fn with_labels_checks_count() {
        let m = DistanceMatrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let err = Network::with_labels(m, vec!["a".into()]).unwrap_err();
        assert!(matches!(
            err,
            TopologyError::LabelCount {
                expected: 2,
                actual: 1
            }
        ));
    }

    #[test]
    fn subnetwork_preserves_pairwise_distances() {
        let net = line3();
        let sub = net.subnetwork(&[NodeId::new(2), NodeId::new(0)]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.distance(NodeId::new(0), NodeId::new(1)), 30.0);
        assert_eq!(sub.label(NodeId::new(0)), "site-2");
    }

    #[test]
    #[should_panic(expected = "duplicate node")]
    fn subnetwork_rejects_duplicates() {
        let net = line3();
        let _ = net.subnetwork(&[NodeId::new(0), NodeId::new(0)]);
    }
}
