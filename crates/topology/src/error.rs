//! Error types for topology construction.

use std::error::Error;
use std::fmt;

use crate::NodeId;

/// Errors arising while building networks, graphs, or distance matrices.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TopologyError {
    /// A matrix constructor received rows of unequal length, or a
    /// non-square shape.
    NotSquare {
        /// Number of rows supplied.
        rows: usize,
        /// Length of the offending row.
        row_len: usize,
    },
    /// A distance entry was negative, NaN, or infinite.
    InvalidDistance {
        /// Row of the offending entry.
        from: usize,
        /// Column of the offending entry.
        to: usize,
        /// The offending value.
        value: f64,
    },
    /// A diagonal entry was nonzero.
    NonzeroDiagonal {
        /// Index of the offending diagonal entry.
        node: usize,
        /// The offending value.
        value: f64,
    },
    /// The matrix was not symmetric at the given entry.
    Asymmetric {
        /// Row index.
        from: usize,
        /// Column index.
        to: usize,
    },
    /// An edge referenced a node outside the graph.
    NodeOutOfRange {
        /// The offending node.
        node: NodeId,
        /// Number of nodes in the graph.
        len: usize,
    },
    /// An edge had a non-positive, NaN, or infinite length.
    InvalidEdgeLength {
        /// The offending length.
        length: f64,
    },
    /// The graph is not connected, so no finite metric exists.
    Disconnected,
    /// A label vector did not match the number of sites.
    LabelCount {
        /// Number of sites.
        expected: usize,
        /// Number of labels supplied.
        actual: usize,
    },
    /// A dataset file could not be read.
    Io {
        /// Path of the file.
        path: String,
        /// Operating-system error message.
        message: String,
    },
    /// A matrix text file failed to parse at a specific line (1-based),
    /// e.g. an unparsable/NaN/negative entry, a ragged row, or an
    /// asymmetric pair detected during ingestion.
    Parse {
        /// 1-based line number in the input text.
        line: usize,
        /// What was wrong at that line.
        message: String,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::NotSquare { rows, row_len } => write!(
                f,
                "matrix is not square: {rows} rows but a row of length {row_len}"
            ),
            TopologyError::InvalidDistance { from, to, value } => {
                write!(f, "invalid distance {value} between nodes {from} and {to}")
            }
            TopologyError::NonzeroDiagonal { node, value } => {
                write!(f, "nonzero diagonal entry {value} at node {node}")
            }
            TopologyError::Asymmetric { from, to } => {
                write!(f, "matrix is asymmetric between nodes {from} and {to}")
            }
            TopologyError::NodeOutOfRange { node, len } => {
                write!(f, "node {node} out of range for graph of {len} nodes")
            }
            TopologyError::InvalidEdgeLength { length } => {
                write!(f, "edge length {length} is not a positive finite number")
            }
            TopologyError::Disconnected => write!(f, "graph is disconnected"),
            TopologyError::LabelCount { expected, actual } => {
                write!(f, "expected {expected} labels but {actual} were supplied")
            }
            TopologyError::Io { path, message } => {
                write!(f, "reading {path}: {message}")
            }
            TopologyError::Parse { line, message } => {
                write!(f, "line {line}: {message}")
            }
        }
    }
}

impl Error for TopologyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = TopologyError::Disconnected;
        assert_eq!(e.to_string(), "graph is disconnected");
        let e = TopologyError::InvalidDistance {
            from: 1,
            to: 2,
            value: -3.0,
        };
        assert!(e.to_string().contains("-3"));
    }

    #[test]
    fn implements_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<TopologyError>();
    }
}
