//! Text import/export for delay matrices.
//!
//! The paper's pipeline starts from measurement files (PlanetLab pings,
//! King estimates). This module reads and writes a simple tab/whitespace-
//! separated format so users can plug real datasets into the library:
//!
//! ```text
//! # optional comment lines
//! site-a  site-b  site-c      ← optional header row of labels
//! 0       12.5    80.1
//! 12.5    0       75.0
//! 80.1    75.0    0
//! ```
//!
//! Parsing is forgiving about separators (any run of spaces/tabs) and
//! strict about shape and values; construction applies metric closure
//! exactly like every other `Network` constructor.

use crate::{DistanceMatrix, Network, TopologyError};

/// Parses a delay matrix from the text format above.
///
/// The first non-comment line may be a header of site labels (detected by
/// failing to parse as numbers); otherwise sites are labelled
/// `site-0 … site-(n−1)`.
///
/// # Errors
///
/// * [`TopologyError::NotSquare`] if the rows do not form a square matrix
///   or a row has the wrong width.
/// * [`TopologyError::InvalidDistance`] for negative/NaN/unparsable
///   entries.
/// * [`TopologyError::Asymmetric`] / [`TopologyError::NonzeroDiagonal`]
///   per [`DistanceMatrix::from_rows`].
/// * [`TopologyError::LabelCount`] if a header's width mismatches the
///   matrix.
///
/// # Examples
///
/// ```
/// use qp_topology::io::parse_matrix;
///
/// let net = parse_matrix("a b\n0 7.5\n7.5 0\n")?;
/// assert_eq!(net.len(), 2);
/// assert_eq!(net.label(qp_topology::NodeId::new(0)), "a");
/// # Ok::<(), qp_topology::TopologyError>(())
/// ```
pub fn parse_matrix(text: &str) -> Result<Network, TopologyError> {
    let mut labels: Option<Vec<String>> = None;
    let mut rows: Vec<Vec<f64>> = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        let parsed: Result<Vec<f64>, _> = fields.iter().map(|f| f.parse::<f64>()).collect();
        match parsed {
            Ok(nums) => rows.push(nums),
            Err(_) if labels.is_none() && rows.is_empty() => {
                labels = Some(fields.iter().map(|s| s.to_string()).collect());
            }
            Err(_) => {
                return Err(TopologyError::InvalidDistance {
                    from: rows.len(),
                    to: 0,
                    value: f64::NAN,
                })
            }
        }
    }
    let matrix = DistanceMatrix::from_rows(&rows)?;
    match labels {
        Some(l) => Network::with_labels(matrix, l),
        None => Ok(Network::from_distances(matrix)),
    }
}

/// Reads and parses a delay-matrix file (the [`parse_matrix`] format).
///
/// This is the checked-in-dataset ingestion path: the repository ships a
/// 116-site King-style matrix under `data/king116.rtt`, and `quorumnet
/// --topology FILE` loads arbitrary measurement files the same way.
///
/// # Errors
///
/// [`TopologyError::Io`] if the file cannot be read; parse errors as for
/// [`parse_matrix`].
///
/// # Examples
///
/// ```no_run
/// let net = qp_topology::io::read_matrix_file("data/king116.rtt")?;
/// assert!(net.len() >= 100);
/// # Ok::<(), qp_topology::TopologyError>(())
/// ```
pub fn read_matrix_file(path: impl AsRef<std::path::Path>) -> Result<Network, TopologyError> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path).map_err(|e| TopologyError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    })?;
    parse_matrix(&text)
}

/// Writes a network to `path` in the [`parse_matrix`] text format — the
/// export half of the ingestion path, so generated topologies (e.g. the
/// transit-stub and hierarchical WANs of [`crate::datasets`]) can be
/// checked in under `data/` and re-read with [`read_matrix_file`].
///
/// Distances are written with 6 decimal places, so a read-back network
/// matches the original to within `5e-7` ms per entry.
///
/// # Errors
///
/// [`TopologyError::Io`] if the file cannot be written.
///
/// # Examples
///
/// ```no_run
/// let net = qp_topology::datasets::TransitStubConfig::default().generate(7);
/// qp_topology::io::write_matrix_file(&net, "data/transit81.rtt")?;
/// let back = qp_topology::io::read_matrix_file("data/transit81.rtt")?;
/// assert_eq!(back.len(), net.len());
/// # Ok::<(), qp_topology::TopologyError>(())
/// ```
pub fn write_matrix_file(
    net: &Network,
    path: impl AsRef<std::path::Path>,
) -> Result<(), TopologyError> {
    let path = path.as_ref();
    std::fs::write(path, format_matrix(net)).map_err(|e| TopologyError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    })
}

/// Renders a network back to the text format (header of labels, then the
/// full matrix, 6 significant digits).
pub fn format_matrix(net: &Network) -> String {
    let mut out = String::new();
    let labels: Vec<&str> = net.nodes().map(|v| net.label(v)).collect();
    out.push_str(&labels.join("\t"));
    out.push('\n');
    for i in net.nodes() {
        let row: Vec<String> = net
            .nodes()
            .map(|j| format!("{:.6}", net.distance(i, j)))
            .collect();
        out.push_str(&row.join("\t"));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{datasets, NodeId};

    #[test]
    fn parses_with_header() {
        let net = parse_matrix("# comment\nny  lon  tok\n0 70 180\n70 0 220\n180 220 0\n").unwrap();
        assert_eq!(net.len(), 3);
        assert_eq!(net.label(NodeId::new(1)), "lon");
        assert_eq!(net.distance(NodeId::new(0), NodeId::new(2)), 180.0);
    }

    #[test]
    fn parses_without_header() {
        let net = parse_matrix("0 5\n5 0\n").unwrap();
        assert_eq!(net.label(NodeId::new(0)), "site-0");
    }

    #[test]
    fn applies_metric_closure_on_parse() {
        // 0-2 direct (100) beats via-1 (30): closure rewrites it.
        let net = parse_matrix("0 10 100\n10 0 20\n100 20 0\n").unwrap();
        assert_eq!(net.distance(NodeId::new(0), NodeId::new(2)), 30.0);
    }

    #[test]
    fn rejects_ragged_rows() {
        assert!(matches!(
            parse_matrix("0 1\n1 0 3\n"),
            Err(TopologyError::NotSquare { .. })
        ));
    }

    #[test]
    fn rejects_garbage_mid_matrix() {
        assert!(parse_matrix("0 1\nx y\n").is_err());
    }

    #[test]
    fn rejects_asymmetry() {
        assert!(matches!(
            parse_matrix("0 1\n2 0\n"),
            Err(TopologyError::Asymmetric { .. })
        ));
    }

    #[test]
    fn header_width_checked() {
        assert!(matches!(
            parse_matrix("a b c\n0 1\n1 0\n"),
            Err(TopologyError::LabelCount { .. })
        ));
    }

    #[test]
    fn roundtrip_preserves_network() {
        let net = datasets::euclidean_random(8, 120.0, 4);
        let text = format_matrix(&net);
        let back = parse_matrix(&text).unwrap();
        assert_eq!(back.len(), net.len());
        for i in net.nodes() {
            for j in net.nodes() {
                assert!(
                    (back.distance(i, j) - net.distance(i, j)).abs() < 1e-5,
                    "distance drift at ({i}, {j})"
                );
            }
        }
        assert_eq!(back.label(NodeId::new(3)), net.label(NodeId::new(3)));
    }

    #[test]
    fn empty_input_gives_empty_network() {
        let net = parse_matrix("# nothing\n").unwrap();
        assert!(net.is_empty());
    }

    #[test]
    fn write_then_read_roundtrips_on_disk() {
        let net = datasets::TransitStubConfig {
            transit_domains: 2,
            transit_size: 2,
            stubs_per_transit: 1,
            stub_size: 3,
            ..datasets::TransitStubConfig::default()
        }
        .generate(5);
        let path = std::env::temp_dir().join(format!("qp-io-roundtrip-{}.rtt", std::process::id()));
        write_matrix_file(&net, &path).unwrap();
        let back = read_matrix_file(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back.len(), net.len());
        for i in net.nodes() {
            for j in net.nodes() {
                assert!(
                    (back.distance(i, j) - net.distance(i, j)).abs() < 1e-5,
                    "distance drift at ({i}, {j})"
                );
                assert_eq!(back.label(i), net.label(i));
            }
        }
    }

    #[test]
    fn write_to_bad_path_reports_io_error() {
        let net = datasets::euclidean_random(3, 10.0, 0);
        let err = write_matrix_file(&net, "/nonexistent-dir/out.rtt").unwrap_err();
        assert!(matches!(err, TopologyError::Io { .. }));
        assert!(err.to_string().contains("nonexistent-dir"));
    }

    #[test]
    fn missing_file_reports_io_error() {
        let err = read_matrix_file("/nonexistent/definitely-missing.rtt").unwrap_err();
        assert!(matches!(err, TopologyError::Io { .. }));
        assert!(err.to_string().contains("definitely-missing.rtt"));
    }

    /// Ingests the checked-in King-style dataset: ≥100 sites, labelled,
    /// positive symmetric delays, metrically closed (re-closure is a
    /// fixpoint) — i.e. a real measurement file workflow end to end.
    #[test]
    fn reads_checked_in_king116_dataset() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../data/king116.rtt");
        let net = read_matrix_file(path).unwrap();
        assert_eq!(net.len(), 116);
        assert!(net.label(NodeId::new(0)).contains('-'), "labelled sites");
        let m = net.distances();
        for i in net.nodes() {
            for j in net.nodes() {
                if i != j {
                    assert!(net.distance(i, j) > 0.0);
                    assert_eq!(net.distance(i, j), net.distance(j, i));
                }
            }
        }
        let closed = m.metric_closure();
        for i in net.nodes() {
            for j in net.nodes() {
                assert!(
                    (closed.get(i, j) - m.get(i, j)).abs() < 1e-9,
                    "checked-in matrix must already be metrically closed at ({i}, {j})"
                );
            }
        }
    }
}
