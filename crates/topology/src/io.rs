//! Text import/export for delay matrices.
//!
//! The paper's pipeline starts from measurement files (PlanetLab pings,
//! King estimates). This module reads and writes a simple tab/whitespace-
//! separated format so users can plug real datasets into the library:
//!
//! ```text
//! # optional comment lines
//! site-a  site-b  site-c      ← optional header row of labels
//! 0       12.5    80.1
//! 12.5    0       75.0
//! 80.1    75.0    0
//! ```
//!
//! Parsing is forgiving about separators (any run of spaces/tabs) and
//! strict about shape and values; construction applies metric closure
//! exactly like every other `Network` constructor.

use crate::{DistanceMatrix, Network, TopologyError};

/// Parses a delay matrix from the text format above.
///
/// The first non-comment line may be a header of site labels (detected by
/// failing to parse as numbers); otherwise sites are labelled
/// `site-0 … site-(n−1)`. Line endings may be LF or CRLF, and trailing
/// blank lines are ignored — measurement files exported from Windows
/// tooling ingest unchanged.
///
/// # Errors
///
/// * [`TopologyError::Parse`] (carrying the 1-based line number) for
///   unparsable, NaN, infinite, or negative entries, ragged rows, a
///   non-square shape, a nonzero diagonal, or an asymmetric pair.
/// * [`TopologyError::LabelCount`] if a header's width mismatches the
///   matrix.
///
/// # Examples
///
/// ```
/// use qp_topology::io::parse_matrix;
///
/// let net = parse_matrix("a b\r\n0 7.5\r\n7.5 0\r\n\r\n")?;
/// assert_eq!(net.len(), 2);
/// assert_eq!(net.label(qp_topology::NodeId::new(0)), "a");
/// # Ok::<(), qp_topology::TopologyError>(())
/// ```
pub fn parse_matrix(text: &str) -> Result<Network, TopologyError> {
    let mut labels: Option<Vec<String>> = None;
    let mut rows: Vec<Vec<f64>> = Vec::new();
    // 1-based source line of each matrix row, for error reporting.
    let mut row_lines: Vec<usize> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        let mut nums: Vec<f64> = Vec::with_capacity(fields.len());
        let mut bad: Option<(usize, &str)> = None;
        for (col, f) in fields.iter().enumerate() {
            match f.parse::<f64>() {
                Ok(v) => nums.push(v),
                Err(_) => {
                    bad = Some((col, f));
                    break;
                }
            }
        }
        if let Some((col, field)) = bad {
            if labels.is_none() && rows.is_empty() {
                labels = Some(fields.iter().map(|s| s.to_string()).collect());
                continue;
            }
            return Err(TopologyError::Parse {
                line: lineno,
                message: format!("unparsable distance '{field}' in column {}", col + 1),
            });
        }
        for (col, &v) in nums.iter().enumerate() {
            if !v.is_finite() || v < 0.0 {
                return Err(TopologyError::Parse {
                    line: lineno,
                    message: format!(
                        "invalid distance {v} in column {} (must be finite and ≥ 0)",
                        col + 1
                    ),
                });
            }
        }
        if let Some(first) = rows.first() {
            if nums.len() != first.len() {
                return Err(TopologyError::Parse {
                    line: lineno,
                    message: format!(
                        "row has {} entries but earlier rows have {}",
                        nums.len(),
                        first.len()
                    ),
                });
            }
        }
        rows.push(nums);
        row_lines.push(lineno);
    }
    let matrix = DistanceMatrix::from_rows(&rows).map_err(|e| match e {
        // Widths are already consistent, so NotSquare here means the row
        // count mismatches the width — report at the last matrix row.
        TopologyError::NotSquare { rows: n, row_len } => TopologyError::Parse {
            line: row_lines.last().copied().unwrap_or(1),
            message: format!("matrix is not square: {n} rows of width {row_len}"),
        },
        TopologyError::NonzeroDiagonal { node, value } => TopologyError::Parse {
            line: row_lines[node],
            message: format!("nonzero diagonal entry {value} at site {node}"),
        },
        TopologyError::Asymmetric { from, to } => TopologyError::Parse {
            line: row_lines[from.max(to)],
            message: format!("matrix is asymmetric between sites {from} and {to}"),
        },
        other => other,
    })?;
    match labels {
        Some(l) => Network::with_labels(matrix, l),
        None => Ok(Network::from_distances(matrix)),
    }
}

/// Reads and parses a delay-matrix file (the [`parse_matrix`] format).
///
/// This is the checked-in-dataset ingestion path: the repository ships a
/// 116-site King-style matrix under `data/king116.rtt`, and `quorumnet
/// --topology FILE` loads arbitrary measurement files the same way.
///
/// # Errors
///
/// [`TopologyError::Io`] if the file cannot be read; parse errors as for
/// [`parse_matrix`].
///
/// # Examples
///
/// ```no_run
/// let net = qp_topology::io::read_matrix_file("data/king116.rtt")?;
/// assert!(net.len() >= 100);
/// # Ok::<(), qp_topology::TopologyError>(())
/// ```
pub fn read_matrix_file(path: impl AsRef<std::path::Path>) -> Result<Network, TopologyError> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path).map_err(|e| TopologyError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    })?;
    parse_matrix(&text)
}

/// Writes a network to `path` in the [`parse_matrix`] text format — the
/// export half of the ingestion path, so generated topologies (e.g. the
/// transit-stub and hierarchical WANs of [`crate::datasets`]) can be
/// checked in under `data/` and re-read with [`read_matrix_file`].
///
/// Distances are written with 6 decimal places, so a read-back network
/// matches the original to within `5e-7` ms per entry.
///
/// # Errors
///
/// [`TopologyError::Io`] if the file cannot be written.
///
/// # Examples
///
/// ```no_run
/// let net = qp_topology::datasets::TransitStubConfig::default().generate(7);
/// qp_topology::io::write_matrix_file(&net, "data/transit81.rtt")?;
/// let back = qp_topology::io::read_matrix_file("data/transit81.rtt")?;
/// assert_eq!(back.len(), net.len());
/// # Ok::<(), qp_topology::TopologyError>(())
/// ```
pub fn write_matrix_file(
    net: &Network,
    path: impl AsRef<std::path::Path>,
) -> Result<(), TopologyError> {
    let path = path.as_ref();
    std::fs::write(path, format_matrix(net)).map_err(|e| TopologyError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    })
}

/// Renders a network back to the text format (header of labels, then the
/// full matrix, 6 significant digits).
pub fn format_matrix(net: &Network) -> String {
    let mut out = String::new();
    let labels: Vec<&str> = net.nodes().map(|v| net.label(v)).collect();
    out.push_str(&labels.join("\t"));
    out.push('\n');
    for i in net.nodes() {
        let row: Vec<String> = net
            .nodes()
            .map(|j| format!("{:.6}", net.distance(i, j)))
            .collect();
        out.push_str(&row.join("\t"));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{datasets, NodeId};

    #[test]
    fn parses_with_header() {
        let net = parse_matrix("# comment\nny  lon  tok\n0 70 180\n70 0 220\n180 220 0\n").unwrap();
        assert_eq!(net.len(), 3);
        assert_eq!(net.label(NodeId::new(1)), "lon");
        assert_eq!(net.distance(NodeId::new(0), NodeId::new(2)), 180.0);
    }

    #[test]
    fn parses_without_header() {
        let net = parse_matrix("0 5\n5 0\n").unwrap();
        assert_eq!(net.label(NodeId::new(0)), "site-0");
    }

    #[test]
    fn applies_metric_closure_on_parse() {
        // 0-2 direct (100) beats via-1 (30): closure rewrites it.
        let net = parse_matrix("0 10 100\n10 0 20\n100 20 0\n").unwrap();
        assert_eq!(net.distance(NodeId::new(0), NodeId::new(2)), 30.0);
    }

    #[test]
    fn rejects_ragged_rows_with_line_number() {
        assert!(matches!(
            parse_matrix("0 1\n1 0 3\n"),
            Err(TopologyError::Parse { line: 2, .. })
        ));
    }

    #[test]
    fn rejects_garbage_mid_matrix_with_line_number() {
        let err = parse_matrix("# measurement dump\n0 1\nx y\n").unwrap_err();
        assert!(matches!(err, TopologyError::Parse { line: 3, .. }), "{err}");
        assert!(err.to_string().contains("'x'"), "{err}");
    }

    #[test]
    fn rejects_asymmetry_with_line_number() {
        let err = parse_matrix("0 1\n2 0\n").unwrap_err();
        assert!(matches!(err, TopologyError::Parse { line: 2, .. }), "{err}");
        assert!(err.to_string().contains("asymmetric"), "{err}");
    }

    #[test]
    fn rejects_nan_entry_with_line_number() {
        // "NaN" parses as a float, so it must be caught by the value
        // check, not the parse check.
        let err = parse_matrix("a b\n0 NaN\nNaN 0\n").unwrap_err();
        assert!(matches!(err, TopologyError::Parse { line: 2, .. }), "{err}");
        assert!(err.to_string().contains("invalid distance"), "{err}");
    }

    #[test]
    fn rejects_negative_entry_with_line_number() {
        let err = parse_matrix("0 1\n1 0\n# note\n0 -2\n").unwrap_err();
        assert!(matches!(err, TopologyError::Parse { line: 4, .. }), "{err}");
    }

    #[test]
    fn rejects_infinite_entry_with_line_number() {
        let err = parse_matrix("0 inf\ninf 0\n").unwrap_err();
        assert!(matches!(err, TopologyError::Parse { line: 1, .. }), "{err}");
    }

    #[test]
    fn rejects_nonzero_diagonal_with_line_number() {
        let err = parse_matrix("ny lon\n0 1\n1 5\n").unwrap_err();
        assert!(matches!(err, TopologyError::Parse { line: 3, .. }), "{err}");
        assert!(err.to_string().contains("diagonal"), "{err}");
    }

    #[test]
    fn rejects_missing_final_row_at_last_line() {
        // 3-wide rows but only 2 of them: not square, blamed on the last
        // matrix row.
        let err = parse_matrix("0 1 2\n1 0 3\n").unwrap_err();
        assert!(matches!(err, TopologyError::Parse { line: 2, .. }), "{err}");
        assert!(err.to_string().contains("not square"), "{err}");
    }

    #[test]
    fn tolerates_crlf_and_trailing_blank_lines() {
        let net = parse_matrix("ny lon\r\n0 70\r\n70 0\r\n\r\n\r\n").unwrap();
        assert_eq!(net.len(), 2);
        assert_eq!(net.label(NodeId::new(1)), "lon");
        assert_eq!(net.distance(NodeId::new(0), NodeId::new(1)), 70.0);
    }

    #[test]
    fn crlf_file_reads_from_disk() {
        let path = std::env::temp_dir().join(format!("qp-io-crlf-{}.rtt", std::process::id()));
        std::fs::write(&path, "a b c\r\n0 1 2\r\n1 0 3\r\n2 3 0\r\n\r\n").unwrap();
        let net = read_matrix_file(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(net.len(), 3);
        assert_eq!(net.label(NodeId::new(2)), "c");
    }

    #[test]
    fn header_width_checked() {
        assert!(matches!(
            parse_matrix("a b c\n0 1\n1 0\n"),
            Err(TopologyError::LabelCount { .. })
        ));
    }

    #[test]
    fn roundtrip_preserves_network() {
        let net = datasets::euclidean_random(8, 120.0, 4);
        let text = format_matrix(&net);
        let back = parse_matrix(&text).unwrap();
        assert_eq!(back.len(), net.len());
        for i in net.nodes() {
            for j in net.nodes() {
                assert!(
                    (back.distance(i, j) - net.distance(i, j)).abs() < 1e-5,
                    "distance drift at ({i}, {j})"
                );
            }
        }
        assert_eq!(back.label(NodeId::new(3)), net.label(NodeId::new(3)));
    }

    #[test]
    fn empty_input_gives_empty_network() {
        let net = parse_matrix("# nothing\n").unwrap();
        assert!(net.is_empty());
    }

    #[test]
    fn write_then_read_roundtrips_on_disk() {
        let net = datasets::TransitStubConfig {
            transit_domains: 2,
            transit_size: 2,
            stubs_per_transit: 1,
            stub_size: 3,
            ..datasets::TransitStubConfig::default()
        }
        .generate(5);
        let path = std::env::temp_dir().join(format!("qp-io-roundtrip-{}.rtt", std::process::id()));
        write_matrix_file(&net, &path).unwrap();
        let back = read_matrix_file(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back.len(), net.len());
        for i in net.nodes() {
            for j in net.nodes() {
                assert!(
                    (back.distance(i, j) - net.distance(i, j)).abs() < 1e-5,
                    "distance drift at ({i}, {j})"
                );
                assert_eq!(back.label(i), net.label(i));
            }
        }
    }

    #[test]
    fn write_to_bad_path_reports_io_error() {
        let net = datasets::euclidean_random(3, 10.0, 0);
        let err = write_matrix_file(&net, "/nonexistent-dir/out.rtt").unwrap_err();
        assert!(matches!(err, TopologyError::Io { .. }));
        assert!(err.to_string().contains("nonexistent-dir"));
    }

    #[test]
    fn missing_file_reports_io_error() {
        let err = read_matrix_file("/nonexistent/definitely-missing.rtt").unwrap_err();
        assert!(matches!(err, TopologyError::Io { .. }));
        assert!(err.to_string().contains("definitely-missing.rtt"));
    }

    /// Ingests the checked-in King-style dataset: ≥100 sites, labelled,
    /// positive symmetric delays, metrically closed (re-closure is a
    /// fixpoint) — i.e. a real measurement file workflow end to end.
    #[test]
    fn reads_checked_in_king116_dataset() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../data/king116.rtt");
        let net = read_matrix_file(path).unwrap();
        assert_eq!(net.len(), 116);
        assert!(net.label(NodeId::new(0)).contains('-'), "labelled sites");
        let m = net.distances();
        for i in net.nodes() {
            for j in net.nodes() {
                if i != j {
                    assert!(net.distance(i, j) > 0.0);
                    assert_eq!(net.distance(i, j), net.distance(j, i));
                }
            }
        }
        let closed = m.metric_closure();
        for i in net.nodes() {
            for j in net.nodes() {
                assert!(
                    (closed.get(i, j) - m.get(i, j)).abs() < 1e-9,
                    "checked-in matrix must already be metrically closed at ({i}, {j})"
                );
            }
        }
    }
}
