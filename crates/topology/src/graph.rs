//! Sparse undirected weighted graphs and shortest paths.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::{DistanceMatrix, NodeId, TopologyError};

/// An undirected edge with a positive length.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// Positive, finite edge length (milliseconds of round-trip delay).
    pub length: f64,
}

/// A sparse undirected graph with positive edge lengths, the `G = (V, E)` of
/// the paper's network model (§4).
///
/// Use [`Graph::all_pairs_shortest_paths`] to derive the induced distance
/// function `d`, or go straight to [`crate::Network::from_graph`].
///
/// # Examples
///
/// ```
/// use qp_topology::{Graph, NodeId};
///
/// let mut g = Graph::new(3);
/// g.add_edge(NodeId::new(0), NodeId::new(1), 10.0)?;
/// g.add_edge(NodeId::new(1), NodeId::new(2), 5.0)?;
/// let d = g.all_pairs_shortest_paths()?;
/// assert_eq!(d.get(NodeId::new(0), NodeId::new(2)), 15.0);
/// # Ok::<(), qp_topology::TopologyError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Graph {
    n: usize,
    adj: Vec<Vec<(usize, f64)>>,
    edges: Vec<Edge>,
}

impl Graph {
    /// Creates a graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        Graph {
            n,
            adj: vec![Vec::new(); n],
            edges: Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The edges added so far, in insertion order.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Adds an undirected edge.
    ///
    /// Parallel edges are permitted; shortest-path routines simply use the
    /// cheaper one.
    ///
    /// # Errors
    ///
    /// * [`TopologyError::NodeOutOfRange`] if an endpoint is not a node.
    /// * [`TopologyError::InvalidEdgeLength`] if `length` is not positive
    ///   and finite.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId, length: f64) -> Result<(), TopologyError> {
        for &v in &[a, b] {
            if v.index() >= self.n {
                return Err(TopologyError::NodeOutOfRange {
                    node: v,
                    len: self.n,
                });
            }
        }
        if !length.is_finite() || length <= 0.0 {
            return Err(TopologyError::InvalidEdgeLength { length });
        }
        self.adj[a.index()].push((b.index(), length));
        self.adj[b.index()].push((a.index(), length));
        self.edges.push(Edge { a, b, length });
        Ok(())
    }

    /// Single-source shortest-path distances (Dijkstra).
    ///
    /// Unreachable nodes get `f64::INFINITY`.
    ///
    /// # Panics
    ///
    /// Panics if `src` is out of range.
    pub fn shortest_paths_from(&self, src: NodeId) -> Vec<f64> {
        assert!(src.index() < self.n, "source node out of range");
        let mut dist = vec![f64::INFINITY; self.n];
        dist[src.index()] = 0.0;
        let mut heap = BinaryHeap::new();
        heap.push(HeapItem {
            dist: 0.0,
            node: src.index(),
        });
        while let Some(HeapItem { dist: d, node: u }) = heap.pop() {
            if d > dist[u] {
                continue;
            }
            for &(v, w) in &self.adj[u] {
                let nd = d + w;
                if nd < dist[v] {
                    dist[v] = nd;
                    heap.push(HeapItem { dist: nd, node: v });
                }
            }
        }
        dist
    }

    /// All-pairs shortest-path distances, as a [`DistanceMatrix`].
    ///
    /// Runs Dijkstra from every node: `O(|V| · |E| log |V|)`, better than
    /// Floyd–Warshall on the sparse graphs this crate builds.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::Disconnected`] if any pair is unreachable.
    pub fn all_pairs_shortest_paths(&self) -> Result<DistanceMatrix, TopologyError> {
        let mut rows = Vec::with_capacity(self.n);
        for i in 0..self.n {
            let row = self.shortest_paths_from(NodeId::new(i));
            if row.iter().any(|d| !d.is_finite()) {
                return Err(TopologyError::Disconnected);
            }
            rows.push(row);
        }
        DistanceMatrix::from_rows(&rows)
    }
}

/// Min-heap item for Dijkstra (BinaryHeap is a max-heap, so order is
/// reversed).
#[derive(Debug, Clone, Copy)]
struct HeapItem {
    dist: f64,
    node: usize,
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist && self.node == other.node
    }
}

impl Eq for HeapItem {}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse on distance for min-heap behaviour; distances are finite
        // by construction (edge lengths are validated), so total order is
        // safe here.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_edges() {
        let mut g = Graph::new(2);
        assert!(matches!(
            g.add_edge(NodeId::new(0), NodeId::new(5), 1.0),
            Err(TopologyError::NodeOutOfRange { .. })
        ));
        assert!(matches!(
            g.add_edge(NodeId::new(0), NodeId::new(1), 0.0),
            Err(TopologyError::InvalidEdgeLength { .. })
        ));
        assert!(matches!(
            g.add_edge(NodeId::new(0), NodeId::new(1), f64::NAN),
            Err(TopologyError::InvalidEdgeLength { .. })
        ));
    }

    #[test]
    fn dijkstra_on_square_with_diagonal() {
        // 0-1:1, 1-3:1, 0-2:4, 2-3:1, 0-3:5 (direct edge is longer)
        let mut g = Graph::new(4);
        g.add_edge(NodeId::new(0), NodeId::new(1), 1.0).unwrap();
        g.add_edge(NodeId::new(1), NodeId::new(3), 1.0).unwrap();
        g.add_edge(NodeId::new(0), NodeId::new(2), 4.0).unwrap();
        g.add_edge(NodeId::new(2), NodeId::new(3), 1.0).unwrap();
        g.add_edge(NodeId::new(0), NodeId::new(3), 5.0).unwrap();
        let d = g.shortest_paths_from(NodeId::new(0));
        assert_eq!(d, vec![0.0, 1.0, 3.0, 2.0]);
    }

    #[test]
    fn disconnected_graph_reports_error() {
        let g = Graph::new(2);
        assert!(matches!(
            g.all_pairs_shortest_paths(),
            Err(TopologyError::Disconnected)
        ));
    }

    #[test]
    fn parallel_edges_use_cheaper() {
        let mut g = Graph::new(2);
        g.add_edge(NodeId::new(0), NodeId::new(1), 9.0).unwrap();
        g.add_edge(NodeId::new(0), NodeId::new(1), 2.0).unwrap();
        let d = g.all_pairs_shortest_paths().unwrap();
        assert_eq!(d.get(NodeId::new(0), NodeId::new(1)), 2.0);
    }

    #[test]
    fn apsp_is_symmetric_metric() {
        let mut g = Graph::new(5);
        let lens = [3.0, 1.0, 4.0, 1.0, 5.0];
        for (i, &l) in lens.iter().enumerate() {
            g.add_edge(NodeId::new(i), NodeId::new((i + 1) % 5), l)
                .unwrap();
        }
        let d = g.all_pairs_shortest_paths().unwrap();
        assert!(d.is_metric(1e-12));
    }
}
