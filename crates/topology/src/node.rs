//! Node identifiers.

use std::fmt;

/// Identifier of a network site (a node of the wide-area graph).
///
/// A `NodeId` is an index into the node set of a [`crate::Network`] or
/// [`crate::Graph`]. The newtype prevents confusing node indices with
/// universe-element indices of a quorum system, which are a different
/// namespace with a different meaning (see `qp-quorum`).
///
/// # Examples
///
/// ```
/// use qp_topology::NodeId;
///
/// let v = NodeId::new(7);
/// assert_eq!(v.index(), 7);
/// assert_eq!(v.to_string(), "v7");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(usize);

impl NodeId {
    /// Creates a node identifier from a raw index.
    pub const fn new(index: usize) -> Self {
        NodeId(index)
    }

    /// The raw index of this node.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(index: usize) -> Self {
        NodeId(index)
    }
}

impl From<NodeId> for usize {
    fn from(id: NodeId) -> Self {
        id.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_usize() {
        let v: NodeId = 42usize.into();
        let i: usize = v.into();
        assert_eq!(i, 42);
    }

    #[test]
    fn display_is_nonempty_and_prefixed() {
        assert_eq!(NodeId::new(0).to_string(), "v0");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
    }
}
