//! Synthetic wide-area datasets and topology generators.
//!
//! The paper evaluates on two measurement datasets: RTTs between 50
//! PlanetLab sites ("Planetlab-50") and King-estimated delays between 161
//! web servers ("daxlist-161"). Those raw measurements are not
//! redistributable, so this module generates *statistically similar* stand-ins
//! (see `DESIGN.md`): sites are scattered around continental clusters on the
//! globe, and the RTT between two sites is
//!
//! ```text
//! rtt(a, b) = inflation · great_circle_km(a, b) / 100 ms   (fiber propagation)
//!           + access(a) + access(b)                        (last-mile penalty)
//! ```
//!
//! perturbed by multiplicative jitter, then metrically closed. All generators
//! are deterministic given a seed, so every figure in the evaluation is
//! exactly reproducible.

#![allow(clippy::needless_range_loop)] // index loops mirror the matrix math
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::{DistanceMatrix, Network};

/// Mean Earth radius in kilometres (spherical approximation).
const EARTH_RADIUS_KM: f64 = 6371.0;

/// Milliseconds of round-trip fiber propagation per kilometre of
/// great-circle distance (speed of light in fiber ≈ 200 000 km/s, both
/// directions).
const RTT_MS_PER_KM: f64 = 1.0 / 100.0;

/// A continental cluster of sites.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSpec {
    /// Human-readable cluster name ("us-east", "europe", …).
    pub name: String,
    /// Cluster center latitude, degrees.
    pub lat: f64,
    /// Cluster center longitude, degrees.
    pub lon: f64,
    /// Scatter radius around the center, kilometres.
    pub radius_km: f64,
    /// Relative share of sites drawn from this cluster.
    pub weight: f64,
}

impl ClusterSpec {
    /// Convenience constructor.
    pub fn new(name: &str, lat: f64, lon: f64, radius_km: f64, weight: f64) -> Self {
        ClusterSpec {
            name: name.to_string(),
            lat,
            lon,
            radius_km,
            weight,
        }
    }
}

/// Configuration for the geographic WAN generator.
///
/// # Examples
///
/// ```
/// use qp_topology::datasets::{ClusterSpec, WanConfig};
///
/// let cfg = WanConfig {
///     sites: 20,
///     clusters: vec![
///         ClusterSpec::new("us", 40.0, -95.0, 1500.0, 1.0),
///         ClusterSpec::new("eu", 50.0, 10.0, 900.0, 1.0),
///     ],
///     ..WanConfig::default()
/// };
/// let net = cfg.generate(7);
/// assert_eq!(net.len(), 20);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WanConfig {
    /// Number of sites to place.
    pub sites: usize,
    /// Cluster mix.
    pub clusters: Vec<ClusterSpec>,
    /// Multiplicative path-inflation factor over great-circle propagation
    /// (Internet routes are not geodesics; ~1.3–1.6 is typical).
    pub route_inflation: f64,
    /// Per-site access penalty range `[lo, hi]`, milliseconds, added at both
    /// endpoints of every path.
    pub access_ms: (f64, f64),
    /// Relative standard deviation of multiplicative RTT jitter
    /// (0.1 = ±10 %); models measurement noise (larger for King-style
    /// estimation than for direct pings).
    pub jitter_frac: f64,
}

impl Default for WanConfig {
    fn default() -> Self {
        WanConfig {
            sites: 50,
            clusters: default_clusters(),
            route_inflation: 1.4,
            access_ms: (0.5, 6.0),
            jitter_frac: 0.08,
        }
    }
}

/// A default, PlanetLab-flavoured continental mix.
pub fn default_clusters() -> Vec<ClusterSpec> {
    vec![
        ClusterSpec::new("us-east", 40.7, -74.0, 900.0, 0.24),
        ClusterSpec::new("us-west", 37.4, -122.1, 700.0, 0.16),
        ClusterSpec::new("europe", 50.1, 8.7, 1100.0, 0.30),
        ClusterSpec::new("east-asia", 35.7, 139.7, 1400.0, 0.16),
        ClusterSpec::new("oceania", -33.9, 151.2, 600.0, 0.06),
        ClusterSpec::new("south-america", -23.5, -46.6, 800.0, 0.08),
    ]
}

impl WanConfig {
    /// Generates a network deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate: no sites, no clusters,
    /// non-positive weights, or an invalid access range.
    pub fn generate(&self, seed: u64) -> Network {
        assert!(self.sites > 0, "sites must be positive");
        assert!(!self.clusters.is_empty(), "at least one cluster required");
        let total_weight: f64 = self.clusters.iter().map(|c| c.weight).sum();
        assert!(
            total_weight > 0.0,
            "cluster weights must sum to a positive value"
        );
        assert!(
            self.access_ms.0 >= 0.0 && self.access_ms.1 >= self.access_ms.0,
            "invalid access delay range"
        );

        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut lats = Vec::with_capacity(self.sites);
        let mut lons = Vec::with_capacity(self.sites);
        let mut access = Vec::with_capacity(self.sites);
        let mut labels = Vec::with_capacity(self.sites);
        let mut cluster_counts = vec![0usize; self.clusters.len()];

        for _ in 0..self.sites {
            // Pick a cluster by weight.
            let mut pick = rng.gen_range(0.0..total_weight);
            let mut ci = 0;
            for (i, c) in self.clusters.iter().enumerate() {
                if pick < c.weight {
                    ci = i;
                    break;
                }
                pick -= c.weight;
            }
            let c = &self.clusters[ci];
            // Uniform point in a disc of radius radius_km around the center.
            let r = c.radius_km * rng.gen_range(0.0f64..1.0).sqrt();
            let theta = rng.gen_range(0.0..std::f64::consts::TAU);
            let dlat = (r * theta.sin()) / 111.0; // ~111 km per degree latitude
            let coslat = c.lat.to_radians().cos().abs().max(0.05);
            let dlon = (r * theta.cos()) / (111.0 * coslat);
            lats.push((c.lat + dlat).clamp(-89.0, 89.0));
            lons.push(c.lon + dlon);
            access.push(rng.gen_range(self.access_ms.0..=self.access_ms.1));
            labels.push(format!("{}-{}", c.name, cluster_counts[ci]));
            cluster_counts[ci] += 1;
        }

        let n = self.sites;
        let mut rows = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in (i + 1)..n {
                let km = haversine_km(lats[i], lons[i], lats[j], lons[j]);
                let base = self.route_inflation * km * RTT_MS_PER_KM + access[i] + access[j];
                // Multiplicative jitter, clamped to stay positive.
                let noise = 1.0 + self.jitter_frac * standard_normal(&mut rng);
                let rtt = (base * noise.max(0.2)).max(0.1);
                rows[i][j] = rtt;
                rows[j][i] = rtt;
            }
        }
        let m = DistanceMatrix::from_rows(&rows).expect("construction is symmetric");
        Network::with_labels(m.metric_closure(), labels).expect("label count matches")
    }
}

/// The 50-site PlanetLab-flavoured dataset used throughout the evaluation
/// ("Planetlab-50" in the paper).
///
/// Deterministic; repeated calls return identical networks.
pub fn planetlab_50() -> Network {
    WanConfig::default().generate(0x504c_3530) // "PL50"
}

/// The 161-site web-server-flavoured dataset ("daxlist-161" in the paper):
/// more sites, heavier North-America share (web servers of the mid-2000s),
/// and noisier delays (King estimates rather than direct pings).
pub fn daxlist_161() -> Network {
    let cfg = WanConfig {
        sites: 161,
        clusters: vec![
            ClusterSpec::new("us-east", 40.7, -74.0, 1200.0, 0.34),
            ClusterSpec::new("us-central", 41.9, -87.6, 900.0, 0.12),
            ClusterSpec::new("us-west", 37.4, -122.1, 900.0, 0.18),
            ClusterSpec::new("europe", 50.1, 8.7, 1300.0, 0.20),
            ClusterSpec::new("east-asia", 35.7, 139.7, 1500.0, 0.10),
            ClusterSpec::new("oceania", -33.9, 151.2, 700.0, 0.03),
            ClusterSpec::new("south-america", -23.5, -46.6, 900.0, 0.03),
        ],
        route_inflation: 1.5,
        access_ms: (1.0, 12.0),
        jitter_frac: 0.18,
    };
    cfg.generate(0x6461_7831) // "dax1"
}

/// Configuration for the GT-ITM-style **transit-stub** WAN generator.
///
/// The classic hierarchical Internet model: a small core of *transit
/// domains* (backbone ASes) whose routers interconnect over long links,
/// with *stub domains* (campus/edge networks) hanging off individual
/// transit routers over short uplinks. Sites are the transit routers plus
/// every stub node; delays are shortest paths over the sampled link
/// delays, so the result is metric by construction.
///
/// Link delays are sampled uniformly from the per-tier ranges and then
/// perturbed by multiplicative jitter; everything is a pure function of
/// the seed.
///
/// # Examples
///
/// ```
/// use qp_topology::datasets::TransitStubConfig;
///
/// let cfg = TransitStubConfig::default();
/// let net = cfg.generate(7);
/// assert_eq!(net.len(), cfg.sites());
/// assert!(net.distances().is_metric(1e-9));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TransitStubConfig {
    /// Number of transit (backbone) domains.
    pub transit_domains: usize,
    /// Routers per transit domain.
    pub transit_size: usize,
    /// Stub domains attached to each transit router.
    pub stubs_per_transit: usize,
    /// Sites per stub domain.
    pub stub_size: usize,
    /// Link-delay range between routers of *different* transit domains,
    /// ms (intercontinental backbone).
    pub inter_transit_ms: (f64, f64),
    /// Link-delay range between routers of the *same* transit domain, ms.
    pub intra_transit_ms: (f64, f64),
    /// Uplink delay range from a stub gateway to its transit router, ms.
    pub transit_stub_ms: (f64, f64),
    /// Link-delay range inside a stub domain, ms.
    pub intra_stub_ms: (f64, f64),
    /// Relative standard deviation of multiplicative delay jitter.
    pub jitter_frac: f64,
    /// Skip the dense Floyd–Warshall [`DistanceMatrix::metric_closure`]
    /// pass and trust the per-source Dijkstra sweep alone.
    ///
    /// Shortest-path distances on a connected graph already satisfy the
    /// triangle inequality, so the closure is semantically redundant here
    /// — but it is *not* a bitwise no-op: floating-point summation order
    /// differs between Dijkstra relaxations and Floyd–Warshall
    /// `d[i][k] + d[k][j]` probes, so the closure nudges ~40% of entries
    /// by ulps. With `sparse_apsp` the O(n³) pass is skipped entirely and
    /// a 2,000-site topology builds in seconds; the resulting matrix is
    /// metric to well under `1e-9` but differs from the closed matrix at
    /// the last few bits. Defaults to `false` so existing seeds stay
    /// bit-identical.
    pub sparse_apsp: bool,
}

impl Default for TransitStubConfig {
    fn default() -> Self {
        TransitStubConfig {
            transit_domains: 3,
            transit_size: 3,
            stubs_per_transit: 2,
            stub_size: 4,
            inter_transit_ms: (30.0, 90.0),
            intra_transit_ms: (4.0, 20.0),
            transit_stub_ms: (1.0, 8.0),
            intra_stub_ms: (0.3, 3.0),
            jitter_frac: 0.05,
            sparse_apsp: false,
        }
    }
}

impl TransitStubConfig {
    /// Total number of sites the configuration generates: all transit
    /// routers plus all stub nodes.
    pub fn sites(&self) -> usize {
        let routers = self.transit_domains * self.transit_size;
        routers + routers * self.stubs_per_transit * self.stub_size
    }

    /// Generates the network deterministically from `seed`.
    ///
    /// Transit routers are labelled `t{domain}-{router}`, stub sites
    /// `s{domain}-{router}-{stub}-{site}`.
    ///
    /// # Panics
    ///
    /// Panics if any count is zero, a delay range is invalid
    /// (`lo <= 0` or `hi < lo`), or `jitter_frac` is negative.
    pub fn generate(&self, seed: u64) -> Network {
        assert!(
            self.transit_domains > 0 && self.transit_size > 0,
            "at least one transit router required"
        );
        assert!(
            self.stubs_per_transit > 0 && self.stub_size > 0,
            "at least one stub site required"
        );
        for (lo, hi) in [
            self.inter_transit_ms,
            self.intra_transit_ms,
            self.transit_stub_ms,
            self.intra_stub_ms,
        ] {
            assert!(lo > 0.0 && hi >= lo, "invalid delay range [{lo}, {hi}]");
        }
        assert!(self.jitter_frac >= 0.0, "jitter must be nonnegative");

        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let n = self.sites();
        let routers = self.transit_domains * self.transit_size;
        let mut graph = crate::Graph::new(n);
        let mut labels = vec![String::new(); n];

        let sample = |rng: &mut ChaCha8Rng, (lo, hi): (f64, f64)| -> f64 {
            let base = rng.gen_range(lo..=hi);
            let noise = 1.0 + self.jitter_frac * standard_normal(rng);
            (base * noise.max(0.2)).max(0.05)
        };
        let router_id = |d: usize, r: usize| d * self.transit_size + r;

        // Transit routers: labelled and fully meshed within a domain.
        for d in 0..self.transit_domains {
            for r in 0..self.transit_size {
                labels[router_id(d, r)] = format!("t{d}-{r}");
            }
            for a in 0..self.transit_size {
                for b in (a + 1)..self.transit_size {
                    let delay = sample(&mut rng, self.intra_transit_ms);
                    graph
                        .add_edge(
                            crate::NodeId::new(router_id(d, a)),
                            crate::NodeId::new(router_id(d, b)),
                            delay,
                        )
                        .expect("distinct in-range routers");
                }
            }
        }
        // One backbone link between every pair of transit domains, from a
        // seeded-random router on each side.
        for d1 in 0..self.transit_domains {
            for d2 in (d1 + 1)..self.transit_domains {
                let r1 = rng.gen_range(0..self.transit_size);
                let r2 = rng.gen_range(0..self.transit_size);
                let delay = sample(&mut rng, self.inter_transit_ms);
                graph
                    .add_edge(
                        crate::NodeId::new(router_id(d1, r1)),
                        crate::NodeId::new(router_id(d2, r2)),
                        delay,
                    )
                    .expect("routers of distinct domains differ");
            }
        }
        // Stub domains: a complete subgraph of short links, whose first
        // site doubles as the gateway onto the hosting transit router.
        let mut next = routers;
        for d in 0..self.transit_domains {
            for r in 0..self.transit_size {
                for s in 0..self.stubs_per_transit {
                    let first = next;
                    for i in 0..self.stub_size {
                        labels[next] = format!("s{d}-{r}-{s}-{i}");
                        next += 1;
                    }
                    let uplink = sample(&mut rng, self.transit_stub_ms);
                    graph
                        .add_edge(
                            crate::NodeId::new(first),
                            crate::NodeId::new(router_id(d, r)),
                            uplink,
                        )
                        .expect("gateway and router are distinct");
                    for a in 0..self.stub_size {
                        for b in (a + 1)..self.stub_size {
                            let delay = sample(&mut rng, self.intra_stub_ms);
                            graph
                                .add_edge(
                                    crate::NodeId::new(first + a),
                                    crate::NodeId::new(first + b),
                                    delay,
                                )
                                .expect("distinct stub sites");
                        }
                    }
                }
            }
        }
        debug_assert_eq!(next, n);
        // Dijkstra relaxation order differs per direction, so opposite
        // sums can differ by ulps; symmetrize before constructing.
        let mut rows = vec![vec![0.0; n]; n];
        for i in 0..n {
            let from_i = graph.shortest_paths_from(crate::NodeId::new(i));
            assert!(
                from_i.iter().all(|d| d.is_finite()),
                "transit-stub graph is connected by construction"
            );
            rows[i] = from_i;
        }
        for i in 0..n {
            for j in (i + 1)..n {
                let d = 0.5 * (rows[i][j] + rows[j][i]);
                rows[i][j] = d;
                rows[j][i] = d;
            }
        }
        let matrix = DistanceMatrix::from_rows(&rows).expect("symmetrized by construction");
        let matrix = if self.sparse_apsp {
            // Dijkstra distances are already shortest paths; skipping the
            // dense closure keeps generation O(n·(m + n log n)).
            matrix
        } else {
            matrix.metric_closure()
        };
        Network::with_labels(matrix, labels).expect("one label per site")
    }
}

/// Configuration for the **hierarchical** (tree-of-clusters) WAN
/// generator.
///
/// Sites are the leaves of a rooted tree: `branching[0]` top-level
/// clusters, each splitting into `branching[1]` sub-clusters, and so on.
/// The edge from a depth-`ℓ` node up to its parent costs
/// `level_ms[ℓ]` ms (jittered per edge), so the delay between two leaves
/// is the tree-path length — crossing higher levels costs more, exactly
/// the continent / region / metro structure of real WANs. Tree metrics
/// satisfy the triangle inequality by construction.
///
/// # Examples
///
/// ```
/// use qp_topology::datasets::HierarchicalConfig;
///
/// let cfg = HierarchicalConfig {
///     branching: vec![3, 2, 4],
///     level_ms: vec![40.0, 10.0, 1.5],
///     jitter_frac: 0.05,
/// };
/// let net = cfg.generate(3);
/// assert_eq!(net.len(), 24);
/// assert!(net.distances().is_metric(1e-9));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HierarchicalConfig {
    /// Children per node at each level; the product is the site count.
    pub branching: Vec<usize>,
    /// Cost (ms) of the edge from a node at that level up to its parent;
    /// must have the same length as `branching`.
    pub level_ms: Vec<f64>,
    /// Relative standard deviation of multiplicative per-edge jitter.
    pub jitter_frac: f64,
}

impl Default for HierarchicalConfig {
    fn default() -> Self {
        HierarchicalConfig {
            branching: vec![4, 3, 4],
            level_ms: vec![45.0, 8.0, 1.0],
            jitter_frac: 0.05,
        }
    }
}

impl HierarchicalConfig {
    /// Number of sites (tree leaves) the configuration generates.
    pub fn sites(&self) -> usize {
        self.branching.iter().product()
    }

    /// Generates the network deterministically from `seed`.
    ///
    /// Leaves are labelled by their path from the root, e.g. `h2-0-3`.
    ///
    /// # Panics
    ///
    /// Panics if `branching` is empty or contains zero, `level_ms` has a
    /// different length or a non-positive entry, or `jitter_frac` is
    /// negative.
    pub fn generate(&self, seed: u64) -> Network {
        assert!(!self.branching.is_empty(), "at least one level required");
        assert!(
            self.branching.iter().all(|&b| b > 0),
            "branching factors must be positive"
        );
        assert_eq!(
            self.branching.len(),
            self.level_ms.len(),
            "one delay per level required"
        );
        assert!(
            self.level_ms.iter().all(|&d| d > 0.0),
            "level delays must be positive"
        );
        assert!(self.jitter_frac >= 0.0, "jitter must be nonnegative");

        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let depth = self.branching.len();
        // Per-level jittered up-edge costs, indexed by the node's path
        // prefix. Level ℓ has prod(branching[..=ℓ]) nodes, enumerated in
        // lexicographic path order — the same order the leaves get.
        let mut up_cost: Vec<Vec<f64>> = Vec::with_capacity(depth);
        let mut level_count = 1usize;
        for l in 0..depth {
            level_count *= self.branching[l];
            let costs = (0..level_count)
                .map(|_| {
                    let noise = 1.0 + self.jitter_frac * standard_normal(&mut rng);
                    (self.level_ms[l] * noise.max(0.2)).max(0.01)
                })
                .collect();
            up_cost.push(costs);
        }

        let n = self.sites();
        // A leaf's path digits, most-significant level first.
        let path_of = |mut leaf: usize| -> Vec<usize> {
            let mut digits = vec![0usize; depth];
            for l in (0..depth).rev() {
                digits[l] = leaf % self.branching[l];
                leaf /= self.branching[l];
            }
            digits
        };
        // Node index of a path prefix at level l (0-based digit arrays).
        let prefix_index = |digits: &[usize], l: usize| -> usize {
            let mut idx = 0usize;
            for (b, &d) in self.branching[..=l].iter().zip(&digits[..=l]) {
                idx = idx * b + d;
            }
            idx
        };

        let mut rows = vec![vec![0.0; n]; n];
        let mut labels = Vec::with_capacity(n);
        for a in 0..n {
            let pa = path_of(a);
            labels.push(format!(
                "h{}",
                pa.iter()
                    .map(|d| d.to_string())
                    .collect::<Vec<_>>()
                    .join("-")
            ));
            for b in (a + 1)..n {
                let pb = path_of(b);
                // First level where the paths diverge.
                let split = (0..depth)
                    .find(|&l| pa[l] != pb[l])
                    .expect("distinct leaves diverge somewhere");
                let mut d = 0.0;
                for l in split..depth {
                    d += up_cost[l][prefix_index(&pa, l)];
                    d += up_cost[l][prefix_index(&pb, l)];
                }
                rows[a][b] = d;
                rows[b][a] = d;
            }
        }
        let m = DistanceMatrix::from_rows(&rows).expect("tree metric is symmetric");
        Network::with_labels(m.metric_closure(), labels).expect("one label per leaf")
    }
}

/// Great-circle distance between two (lat, lon) points in degrees,
/// kilometres (haversine formula).
pub fn haversine_km(lat1: f64, lon1: f64, lat2: f64, lon2: f64) -> f64 {
    let (p1, p2) = (lat1.to_radians(), lat2.to_radians());
    let dp = (lat2 - lat1).to_radians();
    let dl = (lon2 - lon1).to_radians();
    let a = (dp / 2.0).sin().powi(2) + p1.cos() * p2.cos() * (dl / 2.0).sin().powi(2);
    2.0 * EARTH_RADIUS_KM * a.sqrt().atan2((1.0 - a).sqrt())
}

/// A random point-to-point metric from sites placed uniformly in a square of
/// side `side_ms` (distances are Euclidean, in milliseconds). Useful for
/// tests: small, metric by construction.
pub fn euclidean_random(n: usize, side_ms: f64, seed: u64) -> Network {
    assert!(side_ms > 0.0, "side must be positive");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let pts: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen_range(0.0..side_ms), rng.gen_range(0.0..side_ms)))
        .collect();
    let mut rows = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let d = ((pts[i].0 - pts[j].0).powi(2) + (pts[i].1 - pts[j].1).powi(2)).sqrt();
            // Tiny floor keeps co-located points at a positive distance.
            let d = d.max(1e-3);
            rows[i][j] = d;
            rows[j][i] = d;
        }
    }
    Network::from_distances(DistanceMatrix::from_rows(&rows).expect("symmetric"))
}

/// A uniformly random symmetric delay matrix in `[lo, hi]`, metrically
/// closed. Not geographically structured; useful as an adversarial test
/// input.
pub fn uniform_random(n: usize, lo: f64, hi: f64, seed: u64) -> Network {
    assert!(lo > 0.0 && hi >= lo, "invalid delay range");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut rows = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let d = rng.gen_range(lo..=hi);
            rows[i][j] = d;
            rows[j][i] = d;
        }
    }
    Network::from_distances(DistanceMatrix::from_rows(&rows).expect("symmetric"))
}

/// A ring of `n` sites with `step_ms` between neighbours — a worst-ish case
/// for ball-style placements, handy in unit tests because distances are
/// known in closed form.
pub fn ring(n: usize, step_ms: f64) -> Network {
    assert!(step_ms > 0.0, "step must be positive");
    let mut rows = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in 0..n {
            let fwd = (j + n - i) % n;
            let hops = fwd.min(n - fwd);
            rows[i][j] = hops as f64 * step_ms;
        }
    }
    Network::from_distances(DistanceMatrix::from_rows(&rows).expect("symmetric"))
}

/// Standard-normal sample via Box–Muller (avoids a dependency on
/// `rand_distr`).
fn standard_normal<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    #[test]
    fn planetlab_50_shape() {
        let net = planetlab_50();
        assert_eq!(net.len(), 50);
        assert!(net.distances().is_metric(1e-9));
        let mean = net.distances().mean_distance();
        // WAN-scale delays: tens of ms on average, sub-second max.
        assert!(mean > 20.0 && mean < 400.0, "mean {mean} out of WAN range");
        assert!(net.distances().max_distance() < 1000.0);
    }

    #[test]
    fn daxlist_161_shape() {
        let net = daxlist_161();
        assert_eq!(net.len(), 161);
        assert!(net.distances().is_metric(1e-9));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = planetlab_50();
        let b = planetlab_50();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = WanConfig::default();
        assert_ne!(cfg.generate(1), cfg.generate(2));
    }

    #[test]
    fn clusters_are_visible_in_the_metric() {
        // Same-cluster pairs should on average be much closer than
        // cross-cluster pairs.
        let cfg = WanConfig {
            sites: 30,
            clusters: vec![
                ClusterSpec::new("a", 40.0, -90.0, 300.0, 1.0),
                ClusterSpec::new("b", 50.0, 10.0, 300.0, 1.0),
            ],
            jitter_frac: 0.02,
            ..WanConfig::default()
        };
        let net = cfg.generate(11);
        let mut intra = Vec::new();
        let mut inter = Vec::new();
        for i in net.nodes() {
            for j in net.nodes() {
                if i >= j {
                    continue;
                }
                let same = net.label(i).split('-').next() == net.label(j).split('-').next();
                let d = net.distance(i, j);
                if same {
                    intra.push(d);
                } else {
                    inter.push(d);
                }
            }
        }
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(avg(&intra) * 2.0 < avg(&inter), "clusters not separated");
    }

    #[test]
    fn haversine_known_values() {
        // New York (40.7128, -74.0060) to London (51.5074, -0.1278):
        // ~5570 km.
        let d = haversine_km(40.7128, -74.0060, 51.5074, -0.1278);
        assert!((d - 5570.0).abs() < 60.0, "NY-London {d} km");
        // Antipodal-ish sanity: any distance ≤ half circumference.
        assert!(d <= std::f64::consts::PI * EARTH_RADIUS_KM);
        assert_eq!(haversine_km(10.0, 20.0, 10.0, 20.0), 0.0);
    }

    #[test]
    fn euclidean_random_is_metric() {
        let net = euclidean_random(20, 100.0, 3);
        assert_eq!(net.len(), 20);
        assert!(net.distances().is_metric(1e-9));
    }

    #[test]
    fn uniform_random_is_closed() {
        let net = uniform_random(15, 5.0, 200.0, 9);
        assert!(net.distances().is_metric(1e-9));
    }

    #[test]
    fn ring_distances_closed_form() {
        let net = ring(6, 10.0);
        use crate::NodeId;
        assert_eq!(net.distance(NodeId::new(0), NodeId::new(3)), 30.0);
        assert_eq!(net.distance(NodeId::new(0), NodeId::new(5)), 10.0);
        assert!(net.distances().is_metric(1e-9));
    }

    #[test]
    fn transit_stub_shape_and_determinism() {
        let cfg = TransitStubConfig::default();
        let net = cfg.generate(7);
        assert_eq!(net.len(), cfg.sites());
        assert_eq!(net.len(), 9 + 9 * 2 * 4);
        assert!(net.distances().is_metric(1e-9));
        for i in net.nodes() {
            for j in net.nodes() {
                if i != j {
                    assert!(net.distance(i, j) > 0.0, "zero delay at ({i}, {j})");
                }
            }
        }
        assert_eq!(cfg.generate(7), net);
        assert_ne!(cfg.generate(8), net);
        // Labels encode the hierarchy: routers first, then stub sites.
        assert!(net.label(NodeId::new(0)).starts_with('t'));
        assert!(net.label(NodeId::new(net.len() - 1)).starts_with('s'));
    }

    #[test]
    fn transit_stub_sparse_apsp_matches_closure_to_tolerance() {
        // Skipping the dense closure changes entries only at the ulp
        // level: the Dijkstra sweep already yields shortest paths, so the
        // sparse matrix must be metric and agree with the closed one to
        // far better than the 1e-9 relative tolerance the goldens use.
        let closed_cfg = TransitStubConfig::default();
        let sparse_cfg = TransitStubConfig {
            sparse_apsp: true,
            ..TransitStubConfig::default()
        };
        let closed = closed_cfg.generate(7);
        let sparse = sparse_cfg.generate(7);
        assert_eq!(closed.len(), sparse.len());
        assert!(sparse.distances().is_metric(1e-9));
        for i in closed.nodes() {
            for j in closed.nodes() {
                let a = closed.distance(i, j);
                let b = sparse.distance(i, j);
                let scale = a.abs().max(1.0);
                assert!(
                    (a - b).abs() <= 1e-12 * scale,
                    "sparse APSP drifted at ({i}, {j}): {a} vs {b}"
                );
            }
        }
        // Determinism holds on the sparse path too.
        assert_eq!(sparse_cfg.generate(7), sparse);
    }

    #[test]
    fn transit_stub_locality() {
        // Sites of one stub domain must on average be far closer to each
        // other than to sites of a stub under a different transit domain.
        let cfg = TransitStubConfig {
            jitter_frac: 0.02,
            ..TransitStubConfig::default()
        };
        let net = cfg.generate(3);
        let routers = cfg.transit_domains * cfg.transit_size;
        let stub0: Vec<NodeId> = (routers..routers + cfg.stub_size)
            .map(NodeId::new)
            .collect();
        // The first stub of the *last* transit domain.
        let far_start = routers
            + (cfg.transit_domains - 1) * cfg.transit_size * cfg.stubs_per_transit * cfg.stub_size;
        let far: Vec<NodeId> = (far_start..far_start + cfg.stub_size)
            .map(NodeId::new)
            .collect();
        let avg = |xs: &[NodeId], ys: &[NodeId]| -> f64 {
            let mut sum = 0.0;
            let mut count = 0;
            for &a in xs {
                for &b in ys {
                    if a != b {
                        sum += net.distance(a, b);
                        count += 1;
                    }
                }
            }
            sum / count as f64
        };
        let intra = avg(&stub0, &stub0);
        let inter = avg(&stub0, &far);
        assert!(
            intra * 3.0 < inter,
            "stub locality broken: intra {intra} ms vs inter {inter} ms"
        );
    }

    #[test]
    fn hierarchical_shape_and_tree_structure() {
        let cfg = HierarchicalConfig {
            branching: vec![3, 2, 4],
            level_ms: vec![40.0, 10.0, 1.5],
            jitter_frac: 0.0,
        };
        let net = cfg.generate(5);
        assert_eq!(net.len(), 24);
        assert!(net.distances().is_metric(1e-9));
        // Without jitter the tree metric is exact: siblings differ by
        // 2·level_ms[2], cousins across the top level by the full climb.
        let same_metro = net.distance(NodeId::new(0), NodeId::new(1));
        assert!(
            (same_metro - 3.0).abs() < 1e-9,
            "sibling delay {same_metro}"
        );
        let cross_top = net.distance(NodeId::new(0), NodeId::new(23));
        assert!(
            (cross_top - 2.0 * (40.0 + 10.0 + 1.5)).abs() < 1e-9,
            "cross-cluster delay {cross_top}"
        );
        assert_eq!(net.label(NodeId::new(0)), "h0-0-0");
        assert_eq!(net.label(NodeId::new(23)), "h2-1-3");
    }

    #[test]
    fn hierarchical_is_deterministic_and_seed_sensitive() {
        let cfg = HierarchicalConfig::default();
        let a = cfg.generate(11);
        assert_eq!(a.len(), cfg.sites());
        assert!(a.distances().is_metric(1e-9));
        assert_eq!(cfg.generate(11), a);
        assert_ne!(cfg.generate(12), a);
    }

    #[test]
    #[should_panic(expected = "one delay per level")]
    fn hierarchical_rejects_mismatched_levels() {
        let cfg = HierarchicalConfig {
            branching: vec![2, 2],
            level_ms: vec![10.0],
            jitter_frac: 0.0,
        };
        let _ = cfg.generate(0);
    }

    #[test]
    #[should_panic(expected = "at least one stub site")]
    fn transit_stub_rejects_zero_stub() {
        let cfg = TransitStubConfig {
            stub_size: 0,
            ..TransitStubConfig::default()
        };
        let _ = cfg.generate(0);
    }

    #[test]
    #[should_panic(expected = "sites must be positive")]
    fn zero_sites_panics() {
        let cfg = WanConfig {
            sites: 0,
            ..WanConfig::default()
        };
        let _ = cfg.generate(0);
    }
}
