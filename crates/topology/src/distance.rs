//! Symmetric distance matrices and metric closure.

use crate::{NodeId, TopologyError};

/// A symmetric matrix of pairwise round-trip distances (milliseconds).
///
/// Storage is a flat row-major `Vec<f64>`; symmetry and a zero diagonal are
/// enforced at construction. A `DistanceMatrix` need not satisfy the
/// triangle inequality — call [`DistanceMatrix::metric_closure`] to obtain
/// the shortest-path metric it induces (this is what [`crate::Network`]
/// does automatically).
///
/// # Examples
///
/// ```
/// use qp_topology::{DistanceMatrix, NodeId};
///
/// let m = DistanceMatrix::from_rows(&[
///     vec![0.0, 5.0],
///     vec![5.0, 0.0],
/// ])?;
/// assert_eq!(m.get(NodeId::new(0), NodeId::new(1)), 5.0);
/// # Ok::<(), qp_topology::TopologyError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DistanceMatrix {
    n: usize,
    data: Vec<f64>,
}

impl DistanceMatrix {
    /// Builds a matrix from full rows.
    ///
    /// # Errors
    ///
    /// * [`TopologyError::NotSquare`] if the rows do not form an `n × n`
    ///   matrix.
    /// * [`TopologyError::InvalidDistance`] if an entry is negative, NaN, or
    ///   infinite.
    /// * [`TopologyError::NonzeroDiagonal`] if a diagonal entry is nonzero.
    /// * [`TopologyError::Asymmetric`] if `m[i][j] != m[j][i]`.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self, TopologyError> {
        let n = rows.len();
        for row in rows {
            if row.len() != n {
                return Err(TopologyError::NotSquare {
                    rows: n,
                    row_len: row.len(),
                });
            }
        }
        for (i, row) in rows.iter().enumerate() {
            for (j, &x) in row.iter().enumerate() {
                if !x.is_finite() || x < 0.0 {
                    return Err(TopologyError::InvalidDistance {
                        from: i,
                        to: j,
                        value: x,
                    });
                }
                if i == j && x != 0.0 {
                    return Err(TopologyError::NonzeroDiagonal { node: i, value: x });
                }
                if rows[j][i] != x {
                    return Err(TopologyError::Asymmetric { from: i, to: j });
                }
            }
        }
        let data = rows.iter().flatten().copied().collect();
        Ok(DistanceMatrix { n, data })
    }

    /// Builds a matrix from the strictly-upper-triangular entries, row by
    /// row: `(0,1), (0,2), …, (0,n-1), (1,2), …`.
    ///
    /// # Errors
    ///
    /// * [`TopologyError::NotSquare`] if `upper.len() != n(n-1)/2`.
    /// * [`TopologyError::InvalidDistance`] if an entry is negative, NaN, or
    ///   infinite.
    pub fn from_upper_triangle(n: usize, upper: &[f64]) -> Result<Self, TopologyError> {
        let expected = n * n.saturating_sub(1) / 2;
        if upper.len() != expected {
            return Err(TopologyError::NotSquare {
                rows: n,
                row_len: upper.len(),
            });
        }
        let mut data = vec![0.0; n * n];
        let mut it = upper.iter();
        for i in 0..n {
            for j in (i + 1)..n {
                let &x = it.next().expect("length checked above");
                if !x.is_finite() || x < 0.0 {
                    return Err(TopologyError::InvalidDistance {
                        from: i,
                        to: j,
                        value: x,
                    });
                }
                data[i * n + j] = x;
                data[j * n + i] = x;
            }
        }
        Ok(DistanceMatrix { n, data })
    }

    /// The dimension (number of sites).
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix is 0×0.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The distance between two sites.
    ///
    /// # Panics
    ///
    /// Panics if either node index is out of range.
    #[inline]
    pub fn get(&self, a: NodeId, b: NodeId) -> f64 {
        assert!(
            a.index() < self.n && b.index() < self.n,
            "node out of range"
        );
        self.data[a.index() * self.n + b.index()]
    }

    /// A full row of the matrix: distances from `a` to every site.
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of range.
    #[inline]
    pub fn row(&self, a: NodeId) -> &[f64] {
        assert!(a.index() < self.n, "node out of range");
        &self.data[a.index() * self.n..(a.index() + 1) * self.n]
    }

    /// The shortest-path metric induced by this matrix (Floyd–Warshall over
    /// the complete graph whose edge lengths are the entries).
    ///
    /// The result satisfies the triangle inequality and is no larger than
    /// the input anywhere. Idempotent: closing a metric returns it
    /// unchanged.
    pub fn metric_closure(&self) -> DistanceMatrix {
        let n = self.n;
        let mut d = self.data.clone();
        for k in 0..n {
            for i in 0..n {
                let dik = d[i * n + k];
                if dik == 0.0 && i != k {
                    // still fine; zero-length shortcut
                }
                for j in 0..n {
                    let via = dik + d[k * n + j];
                    if via < d[i * n + j] {
                        d[i * n + j] = via;
                    }
                }
            }
        }
        DistanceMatrix { n, data: d }
    }

    /// Checks symmetry, zero diagonal, and the triangle inequality up to an
    /// additive tolerance `tol`.
    pub fn is_metric(&self, tol: f64) -> bool {
        let n = self.n;
        for i in 0..n {
            if self.data[i * n + i] != 0.0 {
                return false;
            }
            for j in 0..n {
                if self.data[i * n + j] != self.data[j * n + i] {
                    return false;
                }
            }
        }
        for k in 0..n {
            for i in 0..n {
                let dik = self.data[i * n + k];
                for j in 0..n {
                    if self.data[i * n + j] > dik + self.data[k * n + j] + tol {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// The largest entry of the matrix (0 for an empty matrix).
    pub fn max_distance(&self) -> f64 {
        self.data.iter().copied().fold(0.0, f64::max)
    }

    /// The mean of all off-diagonal entries (0 when `n < 2`).
    pub fn mean_distance(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        let sum: f64 = self.data.iter().sum();
        sum / (self.n * (self.n - 1)) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_validates_shape() {
        let err = DistanceMatrix::from_rows(&[vec![0.0, 1.0]]).unwrap_err();
        assert!(matches!(err, TopologyError::NotSquare { .. }));
    }

    #[test]
    fn from_rows_validates_symmetry() {
        let err = DistanceMatrix::from_rows(&[vec![0.0, 1.0], vec![2.0, 0.0]]).unwrap_err();
        assert!(matches!(err, TopologyError::Asymmetric { .. }));
    }

    #[test]
    fn from_rows_validates_diagonal() {
        let err = DistanceMatrix::from_rows(&[vec![1.0]]).unwrap_err();
        assert!(matches!(err, TopologyError::NonzeroDiagonal { .. }));
    }

    #[test]
    fn from_rows_rejects_nan() {
        let err =
            DistanceMatrix::from_rows(&[vec![0.0, f64::NAN], vec![f64::NAN, 0.0]]).unwrap_err();
        assert!(matches!(err, TopologyError::InvalidDistance { .. }));
    }

    #[test]
    fn from_upper_triangle_matches_from_rows() {
        let a = DistanceMatrix::from_upper_triangle(3, &[1.0, 2.0, 3.0]).unwrap();
        let b = DistanceMatrix::from_rows(&[
            vec![0.0, 1.0, 2.0],
            vec![1.0, 0.0, 3.0],
            vec![2.0, 3.0, 0.0],
        ])
        .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn from_upper_triangle_checks_length() {
        let err = DistanceMatrix::from_upper_triangle(3, &[1.0]).unwrap_err();
        assert!(matches!(err, TopologyError::NotSquare { .. }));
    }

    #[test]
    fn metric_closure_fixes_violation() {
        let m = DistanceMatrix::from_rows(&[
            vec![0.0, 1.0, 10.0],
            vec![1.0, 0.0, 1.0],
            vec![10.0, 1.0, 0.0],
        ])
        .unwrap();
        assert!(!m.is_metric(1e-12));
        let c = m.metric_closure();
        assert!(c.is_metric(1e-12));
        assert_eq!(c.get(NodeId::new(0), NodeId::new(2)), 2.0);
    }

    #[test]
    fn metric_closure_is_idempotent() {
        let m = DistanceMatrix::from_upper_triangle(4, &[3.0, 9.0, 1.0, 5.0, 2.0, 8.0])
            .unwrap()
            .metric_closure();
        assert_eq!(m, m.metric_closure());
    }

    #[test]
    fn row_matches_get() {
        let m = DistanceMatrix::from_upper_triangle(3, &[1.0, 2.0, 3.0]).unwrap();
        let r = m.row(NodeId::new(1));
        assert_eq!(r, &[1.0, 0.0, 3.0]);
    }

    #[test]
    fn summary_statistics() {
        let m = DistanceMatrix::from_upper_triangle(3, &[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(m.max_distance(), 3.0);
        assert!((m.mean_distance() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_matrix_is_fine() {
        let m = DistanceMatrix::from_rows(&[]).unwrap();
        assert!(m.is_empty());
        assert!(m.is_metric(0.0));
        assert_eq!(m.mean_distance(), 0.0);
    }
}
