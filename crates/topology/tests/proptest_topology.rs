//! Property tests for the topology substrate: metric-closure laws, ball
//! and median invariants, generator guarantees.

#![allow(clippy::needless_range_loop)] // index loops mirror the matrix math

use proptest::prelude::*;
use qp_topology::{datasets, DistanceMatrix, Graph, Network, NodeId};

fn upper_triangle(n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.1f64..500.0, n * (n - 1) / 2)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn closure_is_metric_dominated_idempotent(n in 2usize..12, tri in upper_triangle(12)) {
        let m = DistanceMatrix::from_upper_triangle(n, &tri[..n * (n - 1) / 2]).unwrap();
        let c = m.metric_closure();
        // Triangle inequality holds.
        prop_assert!(c.is_metric(1e-9));
        // Dominated: closure never exceeds the original entrywise.
        for i in 0..n {
            for j in 0..n {
                prop_assert!(
                    c.get(NodeId::new(i), NodeId::new(j))
                        <= m.get(NodeId::new(i), NodeId::new(j)) + 1e-12
                );
            }
        }
        // Idempotent up to FP rounding (summation order may differ by ulps).
        let cc = c.metric_closure();
        for i in 0..n {
            for j in 0..n {
                let a = cc.get(NodeId::new(i), NodeId::new(j));
                let b = c.get(NodeId::new(i), NodeId::new(j));
                prop_assert!((a - b).abs() <= 1e-9 * (1.0 + b.abs()));
            }
        }
    }

    #[test]
    fn ball_is_nested_and_sorted(n in 3usize..12, tri in upper_triangle(12), v in 0usize..3) {
        let m = DistanceMatrix::from_upper_triangle(n, &tri[..n * (n - 1) / 2]).unwrap();
        let net = Network::from_distances(m);
        let v = NodeId::new(v % n);
        let mut prev: Vec<NodeId> = Vec::new();
        for size in 1..=n {
            let ball = net.ball(v, size);
            prop_assert_eq!(ball.len(), size);
            // Nested: the previous ball is a prefix.
            prop_assert_eq!(&ball[..prev.len()], &prev[..]);
            // Sorted by distance from v.
            for w in ball.windows(2) {
                prop_assert!(net.distance(v, w[0]) <= net.distance(v, w[1]) + 1e-12);
            }
            prev = ball;
        }
        // Self is always first.
        prop_assert_eq!(net.ball(v, 1)[0], v);
    }

    #[test]
    fn median_minimizes_total_distance(n in 2usize..12, tri in upper_triangle(12)) {
        let m = DistanceMatrix::from_upper_triangle(n, &tri[..n * (n - 1) / 2]).unwrap();
        let net = Network::from_distances(m);
        let med = net.median();
        let total = |w: NodeId| -> f64 {
            net.nodes().map(|v| net.distance(v, w)).sum()
        };
        let best = total(med);
        for w in net.nodes() {
            prop_assert!(best <= total(w) + 1e-9);
        }
    }

    #[test]
    fn average_distances_match_definition(n in 2usize..10, tri in upper_triangle(10)) {
        let m = DistanceMatrix::from_upper_triangle(n, &tri[..n * (n - 1) / 2]).unwrap();
        let net = Network::from_distances(m);
        let avg = net.average_distances();
        for (i, &a) in avg.iter().enumerate() {
            let manual: f64 = net
                .nodes()
                .map(|v| net.distance(v, NodeId::new(i)))
                .sum::<f64>()
                / n as f64;
            prop_assert!((a - manual).abs() < 1e-9);
        }
    }

    #[test]
    fn graph_apsp_agrees_with_direct_edges_on_trees(
        n in 2usize..10,
        weights in proptest::collection::vec(0.5f64..100.0, 10),
    ) {
        // Star graph: center 0. Shortest paths are sums through the hub.
        let mut g = Graph::new(n);
        for i in 1..n {
            g.add_edge(NodeId::new(0), NodeId::new(i), weights[i]).unwrap();
        }
        let d = g.all_pairs_shortest_paths().unwrap();
        for i in 1..n {
            for j in 1..n {
                let expected = if i == j { 0.0 } else { weights[i] + weights[j] };
                prop_assert!((d.get(NodeId::new(i), NodeId::new(j)) - expected).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn wan_generator_is_deterministic_and_metric(seed in 0u64..200, sites in 2usize..30) {
        let cfg = datasets::WanConfig { sites, ..datasets::WanConfig::default() };
        let a = cfg.generate(seed);
        let b = cfg.generate(seed);
        prop_assert_eq!(&a, &b);
        prop_assert!(a.distances().is_metric(1e-9));
        prop_assert_eq!(a.len(), sites);
        // All pairwise delays positive.
        for i in a.nodes() {
            for j in a.nodes() {
                if i != j {
                    prop_assert!(a.distance(i, j) > 0.0);
                }
            }
        }
    }

    #[test]
    fn transit_stub_generator_invariants(
        seed in 0u64..200,
        domains in 1usize..4,
        routers in 1usize..4,
        stubs in 1usize..3,
        stub_size in 1usize..5,
    ) {
        let cfg = datasets::TransitStubConfig {
            transit_domains: domains,
            transit_size: routers,
            stubs_per_transit: stubs,
            stub_size,
            ..datasets::TransitStubConfig::default()
        };
        let a = cfg.generate(seed);
        // Seed-determinism: regenerating is bit-identical.
        prop_assert_eq!(&a, &cfg.generate(seed));
        prop_assert_ne!(&a, &cfg.generate(seed + 1));
        prop_assert_eq!(a.len(), cfg.sites());
        // Symmetry, zero diagonal, positivity, connectivity (all
        // distances finite), triangle inequality.
        prop_assert!(a.distances().is_metric(1e-9));
        for i in a.nodes() {
            for j in a.nodes() {
                let d = a.distance(i, j);
                prop_assert!(d.is_finite(), "disconnected pair ({i}, {j})");
                prop_assert_eq!(d, a.distance(j, i));
                if i == j {
                    prop_assert_eq!(d, 0.0);
                } else {
                    prop_assert!(d > 0.0);
                }
            }
        }
    }

    #[test]
    fn hierarchical_generator_invariants(
        seed in 0u64..200,
        b0 in 2usize..5,
        b1 in 1usize..4,
        jitter in 0.0f64..0.15,
    ) {
        let cfg = datasets::HierarchicalConfig {
            branching: vec![b0, b1, 2],
            level_ms: vec![50.0, 10.0, 2.0],
            jitter_frac: jitter,
        };
        let a = cfg.generate(seed);
        prop_assert_eq!(&a, &cfg.generate(seed));
        prop_assert_ne!(&a, &cfg.generate(seed + 1));
        prop_assert_eq!(a.len(), b0 * b1 * 2);
        prop_assert!(a.distances().is_metric(1e-9));
        for i in a.nodes() {
            for j in a.nodes() {
                let d = a.distance(i, j);
                prop_assert!(d.is_finite());
                prop_assert_eq!(d, a.distance(j, i));
                if i != j {
                    prop_assert!(d > 0.0);
                }
            }
        }
    }

    #[test]
    fn generated_topologies_roundtrip_through_files(seed in 0u64..50) {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static CASE: AtomicUsize = AtomicUsize::new(0);
        let cfg = datasets::TransitStubConfig {
            transit_domains: 2,
            transit_size: 2,
            stubs_per_transit: 1,
            stub_size: 2,
            ..datasets::TransitStubConfig::default()
        };
        let net = cfg.generate(seed);
        let path = std::env::temp_dir().join(format!(
            "qp-proptest-roundtrip-{}-{}.rtt",
            std::process::id(),
            CASE.fetch_add(1, Ordering::Relaxed),
        ));
        qp_topology::io::write_matrix_file(&net, &path).unwrap();
        let back = qp_topology::io::read_matrix_file(&path);
        std::fs::remove_file(&path).ok();
        let back = back.unwrap();
        prop_assert_eq!(back.len(), net.len());
        for i in net.nodes() {
            for j in net.nodes() {
                prop_assert!(
                    (back.distance(i, j) - net.distance(i, j)).abs() < 1e-5,
                    "drift at ({}, {})", i, j
                );
            }
        }
        for v in net.nodes() {
            prop_assert_eq!(back.label(v), net.label(v));
        }
    }

    #[test]
    fn subnetwork_preserves_distances(seed in 0u64..200, keep in 2usize..10) {
        let net = datasets::euclidean_random(15, 100.0, seed);
        let subset: Vec<NodeId> = (0..keep).map(NodeId::new).collect();
        let sub = net.subnetwork(&subset);
        for (i, &a) in subset.iter().enumerate() {
            for (j, &b) in subset.iter().enumerate() {
                // Euclidean metrics stay metric under restriction, so the
                // closure in `subnetwork` must not change anything.
                prop_assert!(
                    (sub.distance(NodeId::new(i), NodeId::new(j)) - net.distance(a, b))
                        .abs()
                        < 1e-9
                );
            }
        }
    }

    #[test]
    fn ring_metric_is_exact(n in 3usize..20, step in 0.5f64..50.0) {
        let net = datasets::ring(n, step);
        for i in 0..n {
            for j in 0..n {
                let fwd = (j + n - i) % n;
                let hops = fwd.min(n - fwd) as f64;
                prop_assert!(
                    (net.distance(NodeId::new(i), NodeId::new(j)) - hops * step).abs()
                        < 1e-9
                );
            }
        }
    }
}
