//! `quorumd` — a long-lived placement daemon with online delta
//! re-optimization.
//!
//! A deployed quorum system does not live in the static world of the
//! batch pipeline: sites slow down, client demand shifts, nodes crash
//! and come back. Re-running the whole placement pipeline on every
//! change wastes the one thing the warm-start LP layers were built for
//! — the next optimum is a few pivots away from the current one.
//!
//! This crate keeps a [`Session`] per deployed system: the topology,
//! the placement, and a **resident** [`qp_lp::SimplexInstance`] holding
//! the demand-weighted strategy LP in *q-substitution* form
//! ([`qp_core::strategy_lp::build_weighted_strategy_model`]). Each
//! online delta edits the LP in place and re-solves warm:
//!
//! | delta | LP edit | warm path |
//! |---|---|---|
//! | `demand <loc> <w>` | convexity rhs | dual simplex |
//! | `crash <node>` | capacity rhs → 0 | dual simplex |
//! | `restore <node>` | capacity rhs back | dual simplex |
//! | `slowdown <site> <σ>` | objective coefficients | **primal** re-solve |
//! |  | (tuning sweep) | `resolve_with_rhs` per point |
//!
//! After each delta the session re-tunes the uniform capacity over the
//! §7 sweep grid, adopts the response-minimizing point, and reports a
//! [`MigrationPlan`] — which probability mass moves between quorums,
//! and the expected response-time delta.
//!
//! Every answer is cross-checkable against a from-scratch cold rebuild
//! ([`Session::cold_check`], the `check` protocol command): strategies,
//! delay, and tuned capacity agree to ≤ 1e-9 while the warm path spends
//! strictly fewer pivots. The LP objective carries a deterministic
//! relative jitter (~1e-7) that makes the optimum generically unique,
//! so warm and cold land on the *same* vertex instead of two ends of a
//! degenerate face.
//!
//! [`server`] wraps a session in a line-protocol service (TCP or Unix
//! socket, thread-per-connection); [`protocol`] defines the wire
//! grammar shared with the `quorumnet ctl` client. [`persist`] adds
//! crash safety: an fsync'd append-only delta WAL plus periodic atomic
//! snapshots, and [`persist::recover`] replays both on restart and
//! cross-checks the recovered answer against a cold recompute to
//! ≤ 1e-9.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod persist;
pub mod protocol;
pub mod server;
pub mod session;

pub use persist::{recover, PersistError, Persistence, RecoveryReport};
pub use protocol::{Command, Delta};
pub use server::{Endpoint, Server};
pub use session::{
    Answer, CheckReport, DeltaReport, MigrationPlan, PersistedState, Session, SessionConfig,
    SessionError,
};
