//! Crash-safe persistence for `quorumd`: an append-only delta WAL plus
//! periodic atomic snapshots, and recovery that replays both.
//!
//! The invariant is simple: **the durable state on disk is always a
//! snapshot plus the WAL of deltas applied since it was taken.** Every
//! delta that advances the session's sequence number is appended to the
//! WAL — its sequence number, then the delta in the exact wire grammar
//! of the [`crate::protocol`] module, with floats printed as `{:.17e}`
//! so they round-trip bit-for-bit — and fsync'd before the client sees
//! the response. Every `snapshot_every` WAL entries, the full
//! [`PersistedState`] is written to a temp file, fsync'd, atomically
//! renamed over the previous snapshot, and the WAL is truncated.
//!
//! The sequence stamp is what makes the snapshot-then-truncate pair
//! crash-safe without being atomic: a kill between the snapshot rename
//! and the WAL truncation leaves a snapshot at seq `N` *plus* a WAL
//! still holding deltas `≤ N` already folded into it. Replaying those
//! would double-apply demand/slowdown deltas and reject crash/restore
//! ones, so [`recover`] skips every WAL entry stamped `≤` the snapshot's
//! seq and requires the rest to continue contiguously from it.
//!
//! [`recover`] rebuilds a session from the directory: open fresh from
//! the [`SessionConfig`], bulk-restore the snapshot, replay the
//! still-pending WAL deltas one by one (an infeasible delta degrades the
//! session exactly as it did live), and — unless the session came back
//! degraded — cross-check the warm answer against a cold from-scratch
//! recompute to ≤ 1e-9, the same discipline `check` enforces online. A
//! torn final WAL line (the process died mid-append) is dropped;
//! corruption anywhere else is an error naming the line.

use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use crate::protocol::{parse_command, Command, Delta};
use crate::session::{PersistedState, Session, SessionConfig, SessionError};

/// Snapshot file name inside the state directory.
const SNAPSHOT_FILE: &str = "state.snap";
/// Temp name the snapshot is staged under before the atomic rename.
const SNAPSHOT_TMP: &str = "state.snap.tmp";
/// WAL file name inside the state directory.
const WAL_FILE: &str = "deltas.wal";
/// First line of every snapshot file.
const SNAPSHOT_HEADER: &str = "quorumd-snapshot v1";

/// Errors from persistence or recovery.
#[derive(Debug)]
pub enum PersistError {
    /// A file operation failed.
    Io(io::Error),
    /// A snapshot or WAL file holds something unreadable.
    Corrupt {
        /// File the corruption was found in.
        file: String,
        /// 1-based line (0 when no line applies).
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The session rejected the recovered state or a replayed delta.
    Session(SessionError),
    /// The recovered warm answer diverged from the cold recompute.
    Mismatch(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o: {e}"),
            PersistError::Corrupt {
                file,
                line,
                message,
            } if *line > 0 => write!(f, "{file} line {line}: {message}"),
            PersistError::Corrupt { file, message, .. } => write!(f, "{file}: {message}"),
            PersistError::Session(e) => write!(f, "session: {e}"),
            PersistError::Mismatch(m) => write!(f, "recovery cross-check: {m}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Session(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// What [`recover`] found and did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Sequence number the snapshot carried (0 when none existed).
    pub snapshot_seq: u64,
    /// Deltas replayed from the WAL.
    pub wal_deltas: usize,
    /// WAL entries skipped because their seq was `≤` the snapshot's —
    /// deltas already folded in by a snapshot whose WAL truncation was
    /// interrupted by a crash.
    pub wal_stale: usize,
    /// Whether a torn final WAL line was dropped.
    pub torn_tail: bool,
    /// Whether the session came back degraded (infeasible live state).
    pub degraded: bool,
    /// Whether the cold cross-check ran and passed (skipped when
    /// degraded — there is no feasible cold answer to compare against —
    /// and when the directory held no state, where there is nothing
    /// recovered to verify).
    pub checked: bool,
}

/// A live persistence handle: the open WAL plus the snapshot cadence.
pub struct Persistence {
    dir: PathBuf,
    wal: File,
    wal_entries: usize,
    snapshot_every: usize,
}

impl Persistence {
    /// Opens persistence in `dir` (created if missing), writes a fresh
    /// snapshot of `session`, and truncates the WAL — so the on-disk
    /// state is exactly the session handed in. Call *after*
    /// [`recover`] (or on a brand-new session).
    ///
    /// # Errors
    ///
    /// Any file-system failure.
    pub fn open(dir: &Path, snapshot_every: usize, session: &Session) -> io::Result<Persistence> {
        fs::create_dir_all(dir)?;
        write_snapshot(dir, &session.persisted_state())?;
        let wal = File::create(dir.join(WAL_FILE))?;
        wal.sync_all()?;
        Ok(Persistence {
            dir: dir.to_path_buf(),
            wal,
            wal_entries: 0,
            snapshot_every: snapshot_every.max(1),
        })
    }

    /// Appends one applied delta to the WAL and fsyncs it; every
    /// `snapshot_every` entries the WAL is collapsed into a fresh
    /// atomic snapshot of `session`. Call only for deltas the session
    /// actually recorded (its sequence number advanced).
    ///
    /// # Errors
    ///
    /// Any file-system failure; the session itself is unaffected, but
    /// the caller should surface the failure (the on-disk state is now
    /// behind the live one).
    pub fn record(&mut self, delta: &Delta, session: &Session) -> io::Result<()> {
        let t0 = qp_obs::enabled().then(std::time::Instant::now);
        self.wal
            .write_all(wire_line(session.seq(), delta).as_bytes())?;
        self.wal.sync_data()?;
        if let Some(t0) = t0 {
            qp_obs::counter_add("quorumd_wal_appends_total", 1);
            qp_obs::observe(
                "quorumd_wal_append_wall_ms",
                t0.elapsed().as_secs_f64() * 1e3,
            );
        }
        self.wal_entries += 1;
        if self.wal_entries >= self.snapshot_every {
            self.snapshot(session)?;
        }
        Ok(())
    }

    /// Collapses the WAL into a fresh atomic snapshot of `session`.
    ///
    /// # Errors
    ///
    /// Any file-system failure.
    pub fn snapshot(&mut self, session: &Session) -> io::Result<()> {
        let t0 = qp_obs::enabled().then(std::time::Instant::now);
        write_snapshot(&self.dir, &session.persisted_state())?;
        self.wal = File::create(self.dir.join(WAL_FILE))?;
        self.wal.sync_all()?;
        self.wal_entries = 0;
        if let Some(t0) = t0 {
            qp_obs::counter_add("quorumd_snapshots_total", 1);
            qp_obs::observe("quorumd_snapshot_wall_ms", t0.elapsed().as_secs_f64() * 1e3);
        }
        Ok(())
    }

    /// WAL entries appended since the last snapshot.
    pub fn wal_entries(&self) -> usize {
        self.wal_entries
    }
}

/// One WAL entry: the session seq the delta advanced to, then the delta
/// in the wire grammar, newline-terminated, floats printed so they
/// round-trip bit-for-bit.
fn wire_line(seq: u64, delta: &Delta) -> String {
    match *delta {
        Delta::Slowdown { site, factor } => format!("{seq} slowdown {site} {factor:.17e}\n"),
        Delta::Demand { loc, weight } => format!("{seq} demand {loc} {weight:.17e}\n"),
        Delta::Crash { node } => format!("{seq} crash {node}\n"),
        Delta::Restore { node } => format!("{seq} restore {node}\n"),
    }
}

/// Writes `state` to the snapshot file: temp file, fsync, atomic
/// rename, directory fsync.
fn write_snapshot(dir: &Path, state: &PersistedState) -> io::Result<()> {
    let mut text = String::new();
    text.push_str(SNAPSHOT_HEADER);
    text.push('\n');
    text.push_str(&format!("seq {}\n", state.seq));
    for (v, w) in state.raw_weights.iter().enumerate() {
        text.push_str(&format!("demand {v} {w:.17e}\n"));
    }
    for (w, f) in state.slowdown.iter().enumerate() {
        text.push_str(&format!("slowdown {w} {f:.17e}\n"));
    }
    for &w in &state.crashed {
        text.push_str(&format!("crash {w}\n"));
    }
    text.push_str("end\n");

    let tmp = dir.join(SNAPSHOT_TMP);
    {
        let mut f = File::create(&tmp)?;
        f.write_all(text.as_bytes())?;
        f.sync_all()?;
    }
    fs::rename(&tmp, dir.join(SNAPSHOT_FILE))?;
    // Persist the rename itself.
    #[cfg(unix)]
    File::open(dir)?.sync_all()?;
    Ok(())
}

/// Reads the snapshot, if one exists. The write path is atomic
/// (temp + rename), so a half-written snapshot never has the canonical
/// name — anything unreadable under it is corruption, not a torn write.
fn read_snapshot(dir: &Path) -> Result<Option<PersistedState>, PersistError> {
    let path = dir.join(SNAPSHOT_FILE);
    let text = match fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    let file = path.display().to_string();
    let corrupt = |line: usize, message: String| PersistError::Corrupt {
        file: file.clone(),
        line,
        message,
    };
    let mut lines = text.lines().enumerate();
    let header = lines.next().map(|(_, l)| l);
    if header != Some(SNAPSHOT_HEADER) {
        return Err(corrupt(1, format!("expected `{SNAPSHOT_HEADER}` header")));
    }
    let mut seq: Option<u64> = None;
    let mut raw_weights = Vec::new();
    let mut slowdown = Vec::new();
    let mut crashed = Vec::new();
    let mut ended = false;
    for (idx, line) in lines {
        let lineno = idx + 1;
        if ended {
            return Err(corrupt(lineno, "content after `end` marker".into()));
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("seq") => {
                let tok = parts
                    .next()
                    .ok_or_else(|| corrupt(lineno, "seq: missing value".into()))?;
                seq = Some(
                    tok.parse::<u64>()
                        .map_err(|_| corrupt(lineno, format!("seq: bad value '{tok}'")))?,
                );
            }
            Some(kind @ ("demand" | "slowdown")) => {
                let idx_tok = parts
                    .next()
                    .ok_or_else(|| corrupt(lineno, format!("{kind}: missing index")))?;
                let val_tok = parts
                    .next()
                    .ok_or_else(|| corrupt(lineno, format!("{kind}: missing value")))?;
                let i: usize = idx_tok
                    .parse()
                    .map_err(|_| corrupt(lineno, format!("{kind}: bad index '{idx_tok}'")))?;
                let v: f64 = val_tok
                    .parse()
                    .map_err(|_| corrupt(lineno, format!("{kind}: bad value '{val_tok}'")))?;
                let out = if kind == "demand" {
                    &mut raw_weights
                } else {
                    &mut slowdown
                };
                if i != out.len() {
                    return Err(corrupt(
                        lineno,
                        format!("{kind}: index {i} out of order (expected {})", out.len()),
                    ));
                }
                out.push(v);
            }
            Some("crash") => {
                let tok = parts
                    .next()
                    .ok_or_else(|| corrupt(lineno, "crash: missing node".into()))?;
                crashed.push(
                    tok.parse::<usize>()
                        .map_err(|_| corrupt(lineno, format!("crash: bad node '{tok}'")))?,
                );
            }
            Some("end") => ended = true,
            Some(other) => return Err(corrupt(lineno, format!("unknown entry '{other}'"))),
            None => {}
        }
        if parts.next().is_some() {
            return Err(corrupt(lineno, "trailing tokens".into()));
        }
    }
    if !ended {
        return Err(corrupt(
            0,
            "missing `end` marker (truncated snapshot)".into(),
        ));
    }
    let seq = seq.ok_or_else(|| corrupt(0, "missing `seq` entry".into()))?;
    Ok(Some(PersistedState {
        seq,
        raw_weights,
        slowdown,
        crashed,
    }))
}

/// Reads the WAL into seq-stamped deltas. A torn final line (no
/// trailing newline — the process died mid-append) is dropped and
/// flagged; anything else unparseable is corruption naming the line.
fn read_wal(dir: &Path) -> Result<(Vec<(u64, Delta)>, bool), PersistError> {
    let path = dir.join(WAL_FILE);
    let mut text = match fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok((Vec::new(), false)),
        Err(e) => return Err(e.into()),
    };
    let mut torn = false;
    if !text.is_empty() && !text.ends_with('\n') {
        torn = true;
        match text.rfind('\n') {
            Some(pos) => text.truncate(pos + 1),
            None => text.clear(),
        }
    }
    let file = path.display().to_string();
    let mut deltas = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let corrupt = |message: String| PersistError::Corrupt {
            file: file.clone(),
            line: idx + 1,
            message,
        };
        let (seq_tok, rest) = line
            .split_once(' ')
            .ok_or_else(|| corrupt(format!("entry without seq stamp '{line}'")))?;
        let seq: u64 = seq_tok
            .parse()
            .map_err(|_| corrupt(format!("bad seq stamp '{seq_tok}'")))?;
        match parse_command(rest) {
            Ok(Some(Command::Delta(d))) => deltas.push((seq, d)),
            Ok(Some(_)) => return Err(corrupt(format!("non-delta entry '{line}'"))),
            Ok(None) => return Err(corrupt("blank entry".into())),
            Err(msg) => return Err(corrupt(msg)),
        }
    }
    Ok((deltas, torn))
}

/// Rebuilds a session from a state directory: open fresh from `cfg`,
/// restore the snapshot (if any), replay the WAL delta by delta, and —
/// unless the recovered state is degraded — cross-check the warm answer
/// against a cold from-scratch recompute at the session's 1e-9
/// discipline. An empty or missing directory recovers to a fresh
/// session with an all-pass report.
///
/// # Errors
///
/// [`PersistError::Corrupt`] on unreadable files (a torn *final* WAL
/// line is tolerated, not an error), [`PersistError::Session`] when the
/// state doesn't fit `cfg`, [`PersistError::Mismatch`] when the
/// recovered answer diverges from the cold recompute.
pub fn recover(cfg: SessionConfig, dir: &Path) -> Result<(Session, RecoveryReport), PersistError> {
    let mut session = Session::new(cfg).map_err(PersistError::Session)?;
    let mut snapshot_seq = 0;
    if let Some(state) = read_snapshot(dir)? {
        snapshot_seq = state.seq;
        session
            .restore_state(&state)
            .map_err(PersistError::Session)?;
    }
    let (deltas, torn_tail) = read_wal(dir)?;
    let mut wal_deltas = 0;
    let mut wal_stale = 0;
    for (i, (seq, delta)) in deltas.iter().enumerate() {
        let corrupt = |message: String| PersistError::Corrupt {
            file: dir.join(WAL_FILE).display().to_string(),
            line: i + 1,
            message,
        };
        if *seq <= snapshot_seq {
            // Already folded into the snapshot: the process died between
            // the snapshot rename and the WAL truncation. Replaying it
            // would double-apply the delta.
            wal_stale += 1;
            continue;
        }
        if *seq != session.seq() + 1 {
            return Err(corrupt(format!(
                "seq {seq} does not follow session seq {}",
                session.seq()
            )));
        }
        match session.apply(delta) {
            // Ok, or recorded-but-infeasible: both advanced seq, both
            // are exactly what happened live.
            Ok(_) | Err(SessionError::Infeasible(_)) | Err(SessionError::Lp(_)) => wal_deltas += 1,
            Err(e) => {
                // A rejected delta can never have been logged: the WAL
                // disagrees with the snapshot it extends.
                return Err(corrupt(format!("replay rejected: {e}")));
            }
        }
    }
    let degraded = session.degraded();
    let mut checked = false;
    // A fresh symmetric session can tie between capacity grid points,
    // and warm/cold sweeps may break the tie differently at the 1e-16
    // level — there is also nothing recovered to verify. Cross-check
    // only when the directory actually held state.
    let recovered_anything = snapshot_seq > 0 || wal_deltas > 0;
    if !degraded && recovered_anything {
        let check = session.cold_check().map_err(PersistError::Session)?;
        if !check.ok {
            return Err(PersistError::Mismatch(format!(
                "warm/cold diverge: capacity_match={} delay_diff={:.3e} \
                 response_diff={:.3e} max_strategy_diff={:.3e}",
                check.capacity_match,
                check.delay_diff,
                check.response_diff,
                check.max_strategy_diff
            )));
        }
        checked = true;
    }
    // The recovery report also flows through the observability layer as
    // a structured event (plus counters), so a traced `serve` records
    // what recovery found instead of only printing a banner.
    if qp_obs::enabled() {
        qp_obs::counter_add("quorumd_recoveries_total", 1);
        qp_obs::counter_add("quorumd_recovery_wal_stale_total", wal_stale as u64);
        qp_obs::counter_add("quorumd_recovery_torn_tail_total", u64::from(torn_tail));
        qp_obs::point(
            "daemon.recovery",
            &[
                ("snapshot_seq", qp_obs::FieldValue::U64(snapshot_seq)),
                ("wal_deltas", qp_obs::FieldValue::U64(wal_deltas as u64)),
                ("wal_stale", qp_obs::FieldValue::U64(wal_stale as u64)),
                ("torn_tail", qp_obs::FieldValue::Bool(torn_tail)),
                ("degraded", qp_obs::FieldValue::Bool(degraded)),
                ("checked", qp_obs::FieldValue::Bool(checked)),
            ],
        );
    }
    Ok((
        session,
        RecoveryReport {
            snapshot_seq,
            wal_deltas,
            wal_stale,
            torn_tail,
            degraded,
            checked,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::SessionConfig;
    use qp_core::one_to_one;
    use qp_quorum::QuorumSystem;
    use qp_topology::datasets;

    fn config() -> SessionConfig {
        let net = datasets::euclidean_random(12, 100.0, 7);
        let sys = QuorumSystem::grid(3).unwrap();
        let placement = one_to_one::best_placement(&net, &sys).unwrap();
        let quorums = sys.enumerate(100).unwrap();
        SessionConfig {
            net,
            quorums,
            placement,
            alpha: 12.0,
            l_opt: sys.optimal_load().unwrap_or(0.5),
            sweep_steps: 5,
            colgen: None,
        }
    }

    fn state_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("quorumd-persist-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn assert_same_answer(a: &Session, b: &Session) {
        let (x, y) = (a.answer(), b.answer());
        assert_eq!(x.capacity, y.capacity);
        let rel = |p: f64, q: f64| (p - q).abs() / (1.0 + p.abs().max(q.abs()));
        assert!(rel(x.delay_ms, y.delay_ms) <= 1e-9);
        assert!(rel(x.response_ms, y.response_ms) <= 1e-9);
        for (ra, rb) in x.strategy.iter().zip(&y.strategy) {
            for (&pa, &pb) in ra.iter().zip(rb) {
                assert!((pa - pb).abs() <= 1e-9);
            }
        }
    }

    #[test]
    fn kill_and_recover_round_trips_within_1e9() {
        let dir = state_dir("roundtrip");
        let mut live = Session::new(config()).unwrap();
        let mut persist = Persistence::open(&dir, 3, &live).unwrap();
        let deltas = [
            Delta::Demand {
                loc: 1,
                weight: 4.0,
            },
            Delta::Slowdown {
                site: 3,
                factor: 2.5,
            },
            Delta::Crash { node: 5 },
            Delta::Demand {
                loc: 7,
                weight: 0.25,
            },
            Delta::Slowdown {
                site: 0,
                factor: 1.7,
            },
        ];
        for d in &deltas {
            let before = live.seq();
            live.apply(d).unwrap();
            assert!(live.seq() > before);
            persist.record(d, &live).unwrap();
        }
        // snapshot_every = 3 → snapshot at delta 3, two WAL entries since.
        assert_eq!(persist.wal_entries(), 2);
        drop(persist); // kill -9: nothing flushed beyond what fsync already made durable

        let (recovered, report) = recover(config(), &dir).unwrap();
        assert_eq!(recovered.seq(), live.seq());
        assert_eq!(report.snapshot_seq, 3);
        assert_eq!(report.wal_deltas, 2);
        assert!(!report.torn_tail && !report.degraded && report.checked);
        assert_same_answer(&live, &recovered);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_state_dir_recovers_to_a_fresh_session() {
        let dir = state_dir("fresh");
        fs::create_dir_all(&dir).unwrap();
        let (recovered, report) = recover(config(), &dir).unwrap();
        assert_eq!(recovered.seq(), 0);
        assert_eq!(
            report,
            RecoveryReport {
                snapshot_seq: 0,
                wal_deltas: 0,
                wal_stale: 0,
                torn_tail: false,
                degraded: false,
                // Nothing was recovered, so nothing is cross-checked.
                checked: false,
            }
        );
        let fresh = Session::new(config()).unwrap();
        assert_same_answer(&fresh, &recovered);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_final_wal_line_is_dropped() {
        let dir = state_dir("torn");
        let mut live = Session::new(config()).unwrap();
        let mut persist = Persistence::open(&dir, 100, &live).unwrap();
        let d = Delta::Demand {
            loc: 2,
            weight: 3.0,
        };
        live.apply(&d).unwrap();
        persist.record(&d, &live).unwrap();
        drop(persist);
        // The process died mid-append of a second delta.
        let mut wal = fs::OpenOptions::new()
            .append(true)
            .open(dir.join(WAL_FILE))
            .unwrap();
        wal.write_all(b"2 slowdown 4 1.9").unwrap();
        drop(wal);

        let (recovered, report) = recover(config(), &dir).unwrap();
        assert!(report.torn_tail);
        assert_eq!(report.wal_deltas, 1);
        assert_eq!(recovered.seq(), 1);
        assert_same_answer(&live, &recovered);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_wal_after_interrupted_truncation_is_skipped() {
        let dir = state_dir("stale");
        let mut live = Session::new(config()).unwrap();
        let mut persist = Persistence::open(&dir, 100, &live).unwrap();
        let deltas = [
            Delta::Demand {
                loc: 1,
                weight: 4.0,
            },
            Delta::Crash { node: 5 },
            Delta::Slowdown {
                site: 3,
                factor: 2.5,
            },
        ];
        for d in &deltas {
            live.apply(d).unwrap();
            persist.record(d, &live).unwrap();
        }
        // Simulate a kill -9 between the snapshot's atomic rename and
        // the WAL truncation: snapshot at seq 3, WAL still holding the
        // three deltas it already folded in.
        let wal_before = fs::read(dir.join(WAL_FILE)).unwrap();
        persist.snapshot(&live).unwrap();
        drop(persist);
        fs::write(dir.join(WAL_FILE), &wal_before).unwrap();

        let (recovered, report) = recover(config(), &dir).unwrap();
        assert_eq!(report.snapshot_seq, 3);
        assert_eq!(report.wal_stale, 3, "folded-in deltas must be skipped");
        assert_eq!(report.wal_deltas, 0);
        assert!(report.checked);
        assert_eq!(recovered.seq(), live.seq());
        assert_same_answer(&live, &recovered);

        // A WAL entry that jumps past the session seq is corruption, not
        // something to replay.
        fs::write(dir.join(WAL_FILE), b"5 demand 1 2.0\n").unwrap();
        match recover(config(), &dir) {
            Err(PersistError::Corrupt { line, message, .. }) => {
                assert_eq!(line, 1);
                assert!(message.contains("does not follow"), "{message}");
            }
            Err(e) => panic!("wrong error: {e}"),
            Ok(_) => panic!("expected seq-gap corruption"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn mid_file_wal_corruption_names_the_line() {
        let dir = state_dir("corrupt");
        let live = Session::new(config()).unwrap();
        let _persist = Persistence::open(&dir, 100, &live).unwrap();
        fs::write(
            dir.join(WAL_FILE),
            "1 demand 1 2.0\n2 warp speed 9\n3 demand 2 1.0\n",
        )
        .unwrap();
        match recover(config(), &dir) {
            Err(PersistError::Corrupt { line, .. }) => assert_eq!(line, 2),
            Err(e) => panic!("wrong error: {e}"),
            Ok(_) => panic!("expected corruption error"),
        }
        // A WAL that contradicts its snapshot (crash of a crashed node)
        // is corruption too.
        fs::write(dir.join(WAL_FILE), "1 crash 5\n2 crash 5\n").unwrap();
        match recover(config(), &dir) {
            Err(PersistError::Corrupt { line, message, .. }) => {
                assert_eq!(line, 2);
                assert!(message.contains("replay rejected"), "{message}");
            }
            Err(e) => panic!("wrong error: {e}"),
            Ok(_) => panic!("expected replay rejection"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_snapshot_is_rejected() {
        let dir = state_dir("snap-trunc");
        let live = Session::new(config()).unwrap();
        let _persist = Persistence::open(&dir, 100, &live).unwrap();
        let text = fs::read_to_string(dir.join(SNAPSHOT_FILE)).unwrap();
        let cut = text.len() - "end\n".len();
        fs::write(dir.join(SNAPSHOT_FILE), &text[..cut]).unwrap();
        assert!(matches!(
            recover(config(), &dir),
            Err(PersistError::Corrupt { .. })
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn degraded_state_recovers_degraded_and_recovers_back() {
        let dir = state_dir("degraded");
        let mut live = Session::new(config()).unwrap();
        let mut persist = Persistence::open(&dir, 100, &live).unwrap();
        // Crash loaded nodes until the tune goes infeasible; every one
        // of those crashes advanced seq, so every one is WAL-logged.
        let victims: Vec<usize> = live
            .persisted_state()
            .raw_weights
            .iter()
            .enumerate()
            .map(|(w, _)| w)
            .collect();
        let mut tipped = None;
        for w in victims {
            let before = live.seq();
            match live.apply(&Delta::Crash { node: w }) {
                Ok(_) => persist.record(&Delta::Crash { node: w }, &live).unwrap(),
                Err(SessionError::Infeasible(_)) => {
                    assert!(live.seq() > before);
                    persist.record(&Delta::Crash { node: w }, &live).unwrap();
                    tipped = Some(w);
                    break;
                }
                Err(e) => panic!("unexpected: {e}"),
            }
        }
        let tipped = tipped.expect("crashing everything must go infeasible");
        assert!(live.degraded());
        drop(persist);

        let (mut recovered, report) = recover(config(), &dir).unwrap();
        assert!(report.degraded && !report.checked);
        assert_eq!(recovered.seq(), live.seq());
        assert!(recovered.degraded());
        // A restore delta heals the recovered session just like the
        // live one.
        recovered.apply(&Delta::Restore { node: tipped }).unwrap();
        assert!(!recovered.degraded());
        let _ = fs::remove_dir_all(&dir);
    }
}
