//! The `quorumd` line protocol.
//!
//! Requests are single lines, one command each:
//!
//! ```text
//! slowdown <site> <factor>   # site's service slows by factor (σ ≥ 1 typical)
//! demand <loc> <weight>      # client loc's demand weight (≥ 0)
//! crash <node>               # node leaves; its capacity drops to 0
//! restore <node>             # node returns (clears crash and slowdown)
//! query                      # one-line session status
//! snapshot                   # full strategy matrix + tuned capacity
//! check                      # cold from-scratch cross-check of the warm state
//! health                     # liveness probe: seq, degraded flag, persistence
//! metrics                    # Prometheus-style exposition of the session's metrics
//! shutdown                   # stop the server after this reply
//! ```
//!
//! Every request gets one response: a first line `ok <summary>` or
//! `err <message>`, zero or more detail lines, then a lone `.`
//! terminator. Blank request lines and `#` comments are ignored (no
//! response), so delta scripts can be piped in verbatim.

use std::io::{self, BufRead};

/// An online change to a deployed system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Delta {
    /// Site `site`'s service time inflates all its distances by `factor`.
    Slowdown {
        /// Node index of the slowed site.
        site: usize,
        /// Multiplicative factor (> 0; `1.0` clears the slowdown).
        factor: f64,
    },
    /// Client `loc`'s demand weight becomes `weight`.
    Demand {
        /// Node index of the client.
        loc: usize,
        /// New raw demand weight (≥ 0).
        weight: f64,
    },
    /// Node `node` crashes: no load can be served there.
    Crash {
        /// Node index.
        node: usize,
    },
    /// Node `node` returns to service at full speed.
    Restore {
        /// Node index.
        node: usize,
    },
}

/// A parsed protocol command.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Command {
    /// Apply an online delta.
    Delta(Delta),
    /// Report session status.
    Query,
    /// Dump the full strategy matrix.
    Snapshot,
    /// Run the cold cross-check.
    Check,
    /// Report liveness: sequence number, degraded flag, persistence.
    Health,
    /// Dump the observability registry as a Prometheus-style text
    /// exposition (counters, gauges, and per-delta latency histograms).
    Metrics,
    /// Stop the server.
    Shutdown,
}

/// Parses one request line. Returns `Ok(None)` for blank lines and
/// `#` comments (no response due), `Err` with a message for malformed
/// commands.
///
/// # Errors
///
/// A human-readable message naming the offending token.
pub fn parse_command(line: &str) -> Result<Option<Command>, String> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let verb = parts.next().expect("non-empty line has a first token");
    let mut rest: Vec<&str> = parts.collect();
    let mut take_index = |what: &str| -> Result<usize, String> {
        if rest.is_empty() {
            return Err(format!("{verb}: missing {what}"));
        }
        let tok = rest.remove(0);
        tok.parse::<usize>()
            .map_err(|_| format!("{verb}: {what} '{tok}' is not a node index"))
    };
    let cmd = match verb {
        "slowdown" => {
            let site = take_index("site")?;
            let tok = rest
                .first()
                .copied()
                .ok_or_else(|| "slowdown: missing factor".to_string())?;
            rest.remove(0);
            let factor: f64 = tok
                .parse()
                .map_err(|_| format!("slowdown: factor '{tok}' is not a number"))?;
            Command::Delta(Delta::Slowdown { site, factor })
        }
        "demand" => {
            let loc = take_index("loc")?;
            let tok = rest
                .first()
                .copied()
                .ok_or_else(|| "demand: missing weight".to_string())?;
            rest.remove(0);
            let weight: f64 = tok
                .parse()
                .map_err(|_| format!("demand: weight '{tok}' is not a number"))?;
            Command::Delta(Delta::Demand { loc, weight })
        }
        "crash" => Command::Delta(Delta::Crash {
            node: take_index("node")?,
        }),
        "restore" => Command::Delta(Delta::Restore {
            node: take_index("node")?,
        }),
        "query" => Command::Query,
        "snapshot" => Command::Snapshot,
        "check" => Command::Check,
        "health" => Command::Health,
        "metrics" => Command::Metrics,
        "shutdown" => Command::Shutdown,
        other => return Err(format!("unknown command '{other}'")),
    };
    if !rest.is_empty() {
        return Err(format!("{verb}: unexpected trailing '{}'", rest.join(" ")));
    }
    Ok(Some(cmd))
}

/// A framed response: status line, detail lines, `.` terminator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// `true` for `ok`, `false` for `err`.
    pub ok: bool,
    /// The rest of the status line after `ok `/`err `.
    pub summary: String,
    /// Detail lines (without the terminator).
    pub detail: Vec<String>,
}

impl Response {
    /// An `ok` response.
    pub fn ok(summary: impl Into<String>, detail: Vec<String>) -> Response {
        Response {
            ok: true,
            summary: summary.into(),
            detail,
        }
    }

    /// An `err` response.
    pub fn err(message: impl Into<String>) -> Response {
        Response {
            ok: false,
            summary: message.into(),
            detail: Vec::new(),
        }
    }

    /// Serializes the response, terminator included.
    pub fn to_wire(&self) -> String {
        let mut out = String::new();
        out.push_str(if self.ok { "ok " } else { "err " });
        out.push_str(&self.summary);
        out.push('\n');
        for line in &self.detail {
            out.push_str(line);
            out.push('\n');
        }
        out.push_str(".\n");
        out
    }
}

/// Reads one framed response off `reader` (as written by
/// [`Response::to_wire`]).
///
/// # Errors
///
/// [`io::ErrorKind::UnexpectedEof`] if the stream ends before the `.`
/// terminator, [`io::ErrorKind::InvalidData`] if the status line is
/// neither `ok …` nor `err …`.
pub fn read_response(reader: &mut impl BufRead) -> io::Result<Response> {
    let mut status = String::new();
    if reader.read_line(&mut status)? == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed before response",
        ));
    }
    let status = status.trim_end().to_string();
    let framed = |rest: &str| rest.is_empty() || rest.starts_with(' ');
    let (ok, summary) = if let Some(rest) = status.strip_prefix("ok").filter(|r| framed(r)) {
        (true, rest.trim_start().to_string())
    } else if let Some(rest) = status.strip_prefix("err").filter(|r| framed(r)) {
        (false, rest.trim_start().to_string())
    } else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("malformed status line: {status}"),
        ));
    };
    let mut detail = Vec::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed before terminator",
            ));
        }
        let line = line.trim_end();
        if line == "." {
            break;
        }
        detail.push(line.to_string());
    }
    Ok(Response {
        ok,
        summary,
        detail,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_every_command() {
        assert_eq!(
            parse_command("slowdown 3 2.5").unwrap(),
            Some(Command::Delta(Delta::Slowdown {
                site: 3,
                factor: 2.5
            }))
        );
        assert_eq!(
            parse_command("demand 0 0.75").unwrap(),
            Some(Command::Delta(Delta::Demand {
                loc: 0,
                weight: 0.75
            }))
        );
        assert_eq!(
            parse_command("crash 7").unwrap(),
            Some(Command::Delta(Delta::Crash { node: 7 }))
        );
        assert_eq!(
            parse_command("restore 7").unwrap(),
            Some(Command::Delta(Delta::Restore { node: 7 }))
        );
        assert_eq!(parse_command("query").unwrap(), Some(Command::Query));
        assert_eq!(parse_command("snapshot").unwrap(), Some(Command::Snapshot));
        assert_eq!(parse_command("check").unwrap(), Some(Command::Check));
        assert_eq!(parse_command("health").unwrap(), Some(Command::Health));
        assert_eq!(parse_command("metrics").unwrap(), Some(Command::Metrics));
        assert_eq!(parse_command("shutdown").unwrap(), Some(Command::Shutdown));
    }

    #[test]
    fn blank_lines_and_comments_are_silent() {
        assert_eq!(parse_command("").unwrap(), None);
        assert_eq!(parse_command("   ").unwrap(), None);
        assert_eq!(parse_command("# a comment").unwrap(), None);
    }

    #[test]
    fn malformed_commands_name_the_problem() {
        assert!(parse_command("slowdown").unwrap_err().contains("site"));
        assert!(parse_command("slowdown 1").unwrap_err().contains("factor"));
        assert!(parse_command("slowdown x 2").unwrap_err().contains("'x'"));
        assert!(parse_command("demand 1 fast")
            .unwrap_err()
            .contains("'fast'"));
        assert!(parse_command("crash").unwrap_err().contains("node"));
        assert!(parse_command("warp 1").unwrap_err().contains("unknown"));
        assert!(parse_command("query extra")
            .unwrap_err()
            .contains("trailing"));
        assert!(parse_command("crash 1 2").unwrap_err().contains("trailing"));
    }

    #[test]
    fn responses_roundtrip_the_wire() {
        let r = Response::ok(
            "delta applied seq=4",
            vec!["capacity 0.75".into(), "delay 42.5".into()],
        );
        let mut cursor = Cursor::new(r.to_wire());
        assert_eq!(read_response(&mut cursor).unwrap(), r);

        let e = Response::err("bad delta: node 99 out of range");
        let mut cursor = Cursor::new(e.to_wire());
        assert_eq!(read_response(&mut cursor).unwrap(), e);
    }

    #[test]
    fn truncated_responses_error_cleanly() {
        let mut cursor = Cursor::new("ok fine\nno terminator\n");
        assert_eq!(
            read_response(&mut cursor).unwrap_err().kind(),
            std::io::ErrorKind::UnexpectedEof
        );
        let mut cursor = Cursor::new("what\n.\n");
        assert_eq!(
            read_response(&mut cursor).unwrap_err().kind(),
            std::io::ErrorKind::InvalidData
        );
    }
}
