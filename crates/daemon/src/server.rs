//! Thread-per-connection line-protocol server over std::net — no async
//! runtime, just blocking sockets, a poll-accept loop, and one mutex
//! around the session.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
#[cfg(unix)]
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use crate::protocol::{parse_command, Command, Response};
use crate::session::Session;

/// Where a server listens.
#[derive(Debug, Clone)]
pub enum Endpoint {
    /// A TCP address like `127.0.0.1:7070` (`:0` picks a free port).
    Tcp(String),
    /// A Unix-domain socket path.
    #[cfg(unix)]
    Unix(PathBuf),
}

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener, PathBuf),
}

enum Stream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl io::Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl io::Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
        }
    }
}

impl Stream {
    fn try_clone(&self) -> io::Result<Stream> {
        Ok(match self {
            Stream::Tcp(s) => Stream::Tcp(s.try_clone()?),
            #[cfg(unix)]
            Stream::Unix(s) => Stream::Unix(s.try_clone()?),
        })
    }
}

/// Totals reported by [`Server::run`] after shutdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeSummary {
    /// Connections accepted.
    pub connections: usize,
    /// Commands answered (ok or err).
    pub commands: u64,
}

/// A bound but not yet running `quorumd` server.
pub struct Server {
    listener: Listener,
    stop: Arc<AtomicBool>,
}

impl Server {
    /// Binds to `endpoint`. A stale Unix socket file from a previous
    /// run is removed first; TCP port `0` picks a free port (see
    /// [`Server::local_addr`]).
    ///
    /// # Errors
    ///
    /// Any bind failure from the OS.
    pub fn bind(endpoint: &Endpoint) -> io::Result<Server> {
        let listener = match endpoint {
            Endpoint::Tcp(addr) => Listener::Tcp(TcpListener::bind(addr.as_str())?),
            #[cfg(unix)]
            Endpoint::Unix(path) => {
                let _ = std::fs::remove_file(path);
                Listener::Unix(UnixListener::bind(path)?, path.clone())
            }
        };
        Ok(Server {
            listener,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address: `host:port` for TCP, the socket path for Unix.
    pub fn local_addr(&self) -> String {
        match &self.listener {
            Listener::Tcp(l) => l
                .local_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|_| "?".into()),
            #[cfg(unix)]
            Listener::Unix(_, path) => path.display().to_string(),
        }
    }

    /// A flag that stops the accept loop when set (the `shutdown`
    /// command sets it too).
    pub fn stop_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    /// Serves `session` until a `shutdown` command (or the stop flag).
    /// Blocks; returns after all connection threads drain.
    ///
    /// # Errors
    ///
    /// Only on listener-level I/O failures; per-connection errors just
    /// close that connection.
    pub fn run(self, session: Session) -> io::Result<ServeSummary> {
        let session = Arc::new(Mutex::new(session));
        let commands = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let mut handles = Vec::new();
        let mut connections = 0usize;
        match &self.listener {
            Listener::Tcp(l) => l.set_nonblocking(true)?,
            #[cfg(unix)]
            Listener::Unix(l, _) => l.set_nonblocking(true)?,
        }
        while !self.stop.load(Ordering::SeqCst) {
            let accepted: Option<Stream> = match &self.listener {
                Listener::Tcp(l) => match l.accept() {
                    Ok((s, _)) => Some(Stream::Tcp(s)),
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => None,
                    Err(e) => return Err(e),
                },
                #[cfg(unix)]
                Listener::Unix(l, _) => match l.accept() {
                    Ok((s, _)) => Some(Stream::Unix(s)),
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => None,
                    Err(e) => return Err(e),
                },
            };
            match accepted {
                Some(stream) => {
                    connections += 1;
                    let session = Arc::clone(&session);
                    let stop = Arc::clone(&self.stop);
                    let commands = Arc::clone(&commands);
                    handles.push(thread::spawn(move || {
                        let _ = handle_connection(stream, &session, &stop, &commands);
                    }));
                }
                None => thread::sleep(Duration::from_millis(20)),
            }
        }
        for h in handles {
            let _ = h.join();
        }
        #[cfg(unix)]
        if let Listener::Unix(_, path) = &self.listener {
            let _ = std::fs::remove_file(path);
        }
        Ok(ServeSummary {
            connections,
            commands: commands.load(Ordering::SeqCst),
        })
    }
}

/// Convenience for tests and the CLI: connect to an endpoint.
///
/// # Errors
///
/// Any connect failure from the OS.
pub fn connect(endpoint: &Endpoint) -> io::Result<impl io::Read + io::Write> {
    Ok(match endpoint {
        Endpoint::Tcp(addr) => Stream::Tcp(TcpStream::connect(addr.as_str())?),
        #[cfg(unix)]
        Endpoint::Unix(path) => Stream::Unix(UnixStream::connect(path)?),
    })
}

/// Parses an endpoint from CLI flags: a path for `--socket`, an address
/// for `--listen`/`--connect`.
#[cfg(unix)]
pub fn unix_endpoint(path: &Path) -> Endpoint {
    Endpoint::Unix(path.to_path_buf())
}

fn handle_connection(
    stream: Stream,
    session: &Mutex<Session>,
    stop: &AtomicBool,
    commands: &std::sync::atomic::AtomicU64,
) -> io::Result<()> {
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line?;
        let response = match parse_command(&line) {
            Ok(None) => continue,
            Ok(Some(cmd)) => {
                let mut guard = session.lock().expect("session mutex poisoned");
                let resp = execute(&mut guard, cmd);
                drop(guard);
                if cmd == Command::Shutdown {
                    commands.fetch_add(1, Ordering::SeqCst);
                    writer.write_all(resp.to_wire().as_bytes())?;
                    writer.flush()?;
                    stop.store(true, Ordering::SeqCst);
                    return Ok(());
                }
                resp
            }
            Err(msg) => Response::err(msg),
        };
        commands.fetch_add(1, Ordering::SeqCst);
        writer.write_all(response.to_wire().as_bytes())?;
        writer.flush()?;
        if stop.load(Ordering::SeqCst) {
            break;
        }
    }
    Ok(())
}

/// Executes one command against the session and formats the response.
/// Public so the soak harness and `quorumnet ctl --local` drive the
/// exact code path the server runs.
pub fn execute(session: &mut Session, cmd: Command) -> Response {
    match cmd {
        Command::Delta(delta) => match session.apply(&delta) {
            Ok(report) => {
                let a = &report.answer;
                let mig = &report.migration;
                let mut detail = vec![
                    format!("capacity {:.17e}", a.capacity),
                    format!("delay_ms {:.17e}", a.delay_ms),
                    format!("response_ms {:.17e}", a.response_ms),
                    format!("pivots {}", a.pivots),
                    format!("moved_mass {:.17e}", mig.moved_mass),
                    format!("delay_delta_ms {:.17e}", mig.delay_delta_ms),
                    format!("response_delta_ms {:.17e}", mig.response_delta_ms),
                ];
                for mv in &mig.moves {
                    detail.push(format!(
                        "move client {} quorum {} -> {} mass {:.6e}",
                        mv.client, mv.from, mv.to, mv.mass
                    ));
                }
                Response::ok(format!("delta applied seq={}", report.seq), detail)
            }
            Err(e) => Response::err(e.to_string()),
        },
        Command::Query => {
            let s = session.status();
            let mut detail = vec![
                format!("seq {}", s.seq),
                format!("nodes {}", s.num_nodes),
                format!("quorums {}", s.num_quorums),
                format!("capacity {:.17e}", s.capacity),
                format!("delay_ms {:.17e}", s.delay_ms),
                format!("response_ms {:.17e}", s.response_ms),
                format!(
                    "crashed {}",
                    if s.crashed.is_empty() {
                        "-".to_string()
                    } else {
                        s.crashed
                            .iter()
                            .map(|w| w.to_string())
                            .collect::<Vec<_>>()
                            .join(",")
                    }
                ),
                format!(
                    "slowed {}",
                    if s.slowed.is_empty() {
                        "-".to_string()
                    } else {
                        s.slowed
                            .iter()
                            .map(|(w, f)| format!("{w}:{f}"))
                            .collect::<Vec<_>>()
                            .join(",")
                    }
                ),
                format!("warm_pivots {}", s.warm_pivots),
            ];
            if let Some(p) = s.colgen {
                detail.push(format!(
                    "pricing {} of {} columns ({} generated) passes {} solves {}",
                    p.columns_in_master,
                    p.total_columns,
                    p.columns_generated,
                    p.oracle_passes,
                    p.master_resolves
                ));
            }
            Response::ok(format!("status seq={}", s.seq), detail)
        }
        Command::Snapshot => {
            let a = session.answer();
            let mut detail = vec![
                format!("capacity {:.17e}", a.capacity),
                format!("delay_ms {:.17e}", a.delay_ms),
                format!("response_ms {:.17e}", a.response_ms),
            ];
            for (v, row) in a.strategy.iter().enumerate() {
                let cells: Vec<String> = row.iter().map(|p| format!("{p:.17e}")).collect();
                detail.push(format!("strategy {v} {}", cells.join(" ")));
            }
            Response::ok(format!("snapshot clients={}", a.strategy.len()), detail)
        }
        Command::Check => match session.cold_check() {
            Ok(report) => {
                let detail = vec![
                    format!("capacity_match {}", report.capacity_match),
                    format!("delay_diff {:.3e}", report.delay_diff),
                    format!("response_diff {:.3e}", report.response_diff),
                    format!("max_strategy_diff {:.3e}", report.max_strategy_diff),
                    format!("warm_pivots {}", report.warm_pivots),
                    format!("cold_pivots {}", report.cold_pivots),
                ];
                if report.ok {
                    Response::ok("check passed", detail)
                } else {
                    Response {
                        ok: false,
                        summary: "check FAILED: warm and cold answers diverge".into(),
                        detail,
                    }
                }
            }
            Err(e) => Response::err(e.to_string()),
        },
        Command::Shutdown => Response::ok("shutting down", Vec::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::read_response;
    use crate::session::SessionConfig;
    use qp_core::one_to_one;
    use qp_quorum::QuorumSystem;
    use qp_topology::datasets;

    fn test_session() -> Session {
        let net = datasets::euclidean_random(12, 100.0, 7);
        let sys = QuorumSystem::grid(3).unwrap();
        let placement = one_to_one::best_placement(&net, &sys).unwrap();
        let quorums = sys.enumerate(100).unwrap();
        Session::new(SessionConfig {
            net,
            quorums,
            placement,
            alpha: 12.0,
            l_opt: sys.optimal_load().unwrap_or(0.5),
            sweep_steps: 5,
            colgen: None,
        })
        .unwrap()
    }

    #[test]
    fn tcp_round_trip_with_shutdown() {
        let server = Server::bind(&Endpoint::Tcp("127.0.0.1:0".into())).unwrap();
        let addr = server.local_addr();
        let session = test_session();
        let handle = std::thread::spawn(move || server.run(session).unwrap());

        let endpoint = Endpoint::Tcp(addr);
        let stream = connect(&endpoint).unwrap();
        let mut writer = BufReader::new(stream);
        writer
            .get_mut()
            .write_all(b"query\nslowdown 2 2.0\ncheck\nbogus\nshutdown\n")
            .unwrap();
        writer.get_mut().flush().unwrap();

        let r = read_response(&mut writer).unwrap();
        assert!(r.ok, "query failed: {}", r.summary);
        assert!(r.detail.iter().any(|l| l.starts_with("capacity ")));
        let r = read_response(&mut writer).unwrap();
        assert!(r.ok, "delta failed: {}", r.summary);
        assert!(r.summary.contains("seq=1"));
        let r = read_response(&mut writer).unwrap();
        assert!(r.ok, "check failed: {} {:?}", r.summary, r.detail);
        let r = read_response(&mut writer).unwrap();
        assert!(!r.ok, "bogus command must err");
        let r = read_response(&mut writer).unwrap();
        assert!(r.ok && r.summary.contains("shutting down"));

        let summary = handle.join().unwrap();
        assert_eq!(summary.connections, 1);
        assert_eq!(summary.commands, 5);
    }

    #[cfg(unix)]
    #[test]
    fn unix_socket_round_trip() {
        let path = std::env::temp_dir().join(format!("quorumd-test-{}.sock", std::process::id()));
        let server = Server::bind(&Endpoint::Unix(path.clone())).unwrap();
        let session = test_session();
        let handle = std::thread::spawn(move || server.run(session).unwrap());

        let stream = connect(&Endpoint::Unix(path.clone())).unwrap();
        let mut reader = BufReader::new(stream);
        reader
            .get_mut()
            .write_all(b"demand 1 3.0\nshutdown\n")
            .unwrap();
        reader.get_mut().flush().unwrap();
        let r = read_response(&mut reader).unwrap();
        assert!(r.ok, "demand failed: {}", r.summary);
        let r = read_response(&mut reader).unwrap();
        assert!(r.ok);
        handle.join().unwrap();
        assert!(!path.exists(), "socket file must be cleaned up");
    }
}
