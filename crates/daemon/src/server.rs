//! Thread-per-connection line-protocol server over std::net — no async
//! runtime, just blocking sockets, a poll-accept loop, and one mutex
//! around the session.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
#[cfg(unix)]
use std::path::Path;
#[cfg(unix)]
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use qp_obs::Registry;

use crate::persist::Persistence;
use crate::protocol::{parse_command, Command, Response};
use crate::session::Session;

/// Longest accepted request line, bytes (newline excluded). Anything
/// longer gets a structured `err` and the connection is closed — no
/// command in the grammar comes anywhere near this.
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// Default idle-connection timeout: a connection that sends nothing for
/// this long is told so and closed (see [`Server::set_idle_timeout`]).
pub const DEFAULT_IDLE_TIMEOUT: Duration = Duration::from_secs(300);

/// Where a server listens.
#[derive(Debug, Clone)]
pub enum Endpoint {
    /// A TCP address like `127.0.0.1:7070` (`:0` picks a free port).
    Tcp(String),
    /// A Unix-domain socket path.
    #[cfg(unix)]
    Unix(PathBuf),
}

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener, PathBuf),
}

enum Stream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl io::Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl io::Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
        }
    }
}

impl Stream {
    fn try_clone(&self) -> io::Result<Stream> {
        Ok(match self {
            Stream::Tcp(s) => Stream::Tcp(s.try_clone()?),
            #[cfg(unix)]
            Stream::Unix(s) => Stream::Unix(s.try_clone()?),
        })
    }

    fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_read_timeout(dur),
            #[cfg(unix)]
            Stream::Unix(s) => s.set_read_timeout(dur),
        }
    }
}

/// Everything a connection thread touches under the one server mutex:
/// the session, optional persistence, and the last persistence failure
/// (surfaced through `health`).
struct Served {
    session: Session,
    persist: Option<Persistence>,
    persist_error: Option<String>,
}

/// Totals reported by [`Server::run`] after shutdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeSummary {
    /// Connections accepted.
    pub connections: usize,
    /// Commands answered (ok or err).
    pub commands: u64,
}

/// A bound but not yet running `quorumd` server.
pub struct Server {
    listener: Listener,
    stop: Arc<AtomicBool>,
    idle_timeout: Duration,
}

impl Server {
    /// Binds to `endpoint`. A stale Unix socket file from a previous
    /// run is removed first; TCP port `0` picks a free port (see
    /// [`Server::local_addr`]).
    ///
    /// # Errors
    ///
    /// Any bind failure from the OS.
    pub fn bind(endpoint: &Endpoint) -> io::Result<Server> {
        let listener = match endpoint {
            Endpoint::Tcp(addr) => Listener::Tcp(TcpListener::bind(addr.as_str())?),
            #[cfg(unix)]
            Endpoint::Unix(path) => {
                let _ = std::fs::remove_file(path);
                Listener::Unix(UnixListener::bind(path)?, path.clone())
            }
        };
        Ok(Server {
            listener,
            stop: Arc::new(AtomicBool::new(false)),
            idle_timeout: DEFAULT_IDLE_TIMEOUT,
        })
    }

    /// Overrides the idle-connection timeout (default
    /// [`DEFAULT_IDLE_TIMEOUT`]).
    pub fn set_idle_timeout(&mut self, timeout: Duration) {
        self.idle_timeout = timeout;
    }

    /// The bound address: `host:port` for TCP, the socket path for Unix.
    pub fn local_addr(&self) -> String {
        match &self.listener {
            Listener::Tcp(l) => l
                .local_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|_| "?".into()),
            #[cfg(unix)]
            Listener::Unix(_, path) => path.display().to_string(),
        }
    }

    /// A flag that stops the accept loop when set (the `shutdown`
    /// command sets it too).
    pub fn stop_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    /// Serves `session` until a `shutdown` command (or the stop flag).
    /// Blocks; returns after all connection threads drain.
    ///
    /// # Errors
    ///
    /// Only on listener-level I/O failures; per-connection errors just
    /// close that connection.
    pub fn run(self, session: Session) -> io::Result<ServeSummary> {
        self.run_inner(session, None)
    }

    /// Like [`run`](Self::run), but every delta that advances the
    /// session is also fsync'd to `persistence`'s WAL before the client
    /// sees the response, so while persistence is healthy a `kill -9`
    /// loses nothing acknowledged. A persistence I/O failure does not
    /// drop the delta from the live session (it is already applied),
    /// but the durability guarantee lapses until the next successful
    /// snapshot: the failure is surfaced as a `warning persist failed`
    /// detail line on the delta's own response, and through the
    /// `health` command thereafter.
    ///
    /// # Errors
    ///
    /// Only on listener-level I/O failures.
    pub fn run_persistent(
        self,
        session: Session,
        persistence: Persistence,
    ) -> io::Result<ServeSummary> {
        self.run_inner(session, Some(persistence))
    }

    fn run_inner(self, session: Session, persist: Option<Persistence>) -> io::Result<ServeSummary> {
        let served = Arc::new(Mutex::new(Served {
            session,
            persist,
            persist_error: None,
        }));
        let commands = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let mut handles = Vec::new();
        let mut connections = 0usize;
        match &self.listener {
            Listener::Tcp(l) => l.set_nonblocking(true)?,
            #[cfg(unix)]
            Listener::Unix(l, _) => l.set_nonblocking(true)?,
        }
        while !self.stop.load(Ordering::SeqCst) {
            let accepted: Option<Stream> = match &self.listener {
                Listener::Tcp(l) => match l.accept() {
                    Ok((s, _)) => Some(Stream::Tcp(s)),
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => None,
                    Err(e) => return Err(e),
                },
                #[cfg(unix)]
                Listener::Unix(l, _) => match l.accept() {
                    Ok((s, _)) => Some(Stream::Unix(s)),
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => None,
                    Err(e) => return Err(e),
                },
            };
            match accepted {
                Some(stream) => {
                    connections += 1;
                    let served = Arc::clone(&served);
                    let stop = Arc::clone(&self.stop);
                    let commands = Arc::clone(&commands);
                    let idle = self.idle_timeout;
                    handles.push(thread::spawn(move || {
                        let _ = handle_connection(stream, &served, &stop, &commands, idle);
                    }));
                }
                None => thread::sleep(Duration::from_millis(20)),
            }
        }
        for h in handles {
            let _ = h.join();
        }
        #[cfg(unix)]
        if let Listener::Unix(_, path) = &self.listener {
            let _ = std::fs::remove_file(path);
        }
        Ok(ServeSummary {
            connections,
            commands: commands.load(Ordering::SeqCst),
        })
    }
}

/// Convenience for tests and the CLI: connect to an endpoint.
///
/// # Errors
///
/// Any connect failure from the OS.
pub fn connect(endpoint: &Endpoint) -> io::Result<impl io::Read + io::Write> {
    Ok(match endpoint {
        Endpoint::Tcp(addr) => Stream::Tcp(TcpStream::connect(addr.as_str())?),
        #[cfg(unix)]
        Endpoint::Unix(path) => Stream::Unix(UnixStream::connect(path)?),
    })
}

/// Parses an endpoint from CLI flags: a path for `--socket`, an address
/// for `--listen`/`--connect`.
#[cfg(unix)]
pub fn unix_endpoint(path: &Path) -> Endpoint {
    Endpoint::Unix(path.to_path_buf())
}

/// One framing outcome from the byte-capped request reader.
#[derive(Debug, PartialEq, Eq)]
enum RequestLine {
    /// A complete, newline-terminated, valid-UTF-8 line (sans newline).
    Line(String),
    /// The line exceeded the byte cap before a newline arrived.
    Oversized,
    /// The line is complete but not valid UTF-8.
    BadUtf8,
    /// The peer closed the connection mid-line, `usize` bytes in.
    PartialEof(usize),
    /// Clean end of stream.
    Eof,
}

/// Reads one request line without ever buffering more than `max` bytes
/// of it — the defense against a peer streaming an endless line.
fn read_request(reader: &mut impl BufRead, max: usize) -> io::Result<RequestLine> {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let chunk = reader.fill_buf()?;
        if chunk.is_empty() {
            return Ok(if buf.is_empty() {
                RequestLine::Eof
            } else {
                RequestLine::PartialEof(buf.len())
            });
        }
        if let Some(pos) = chunk.iter().position(|&b| b == b'\n') {
            if buf.len() + pos > max {
                reader.consume(pos + 1);
                return Ok(RequestLine::Oversized);
            }
            buf.extend_from_slice(&chunk[..pos]);
            reader.consume(pos + 1);
            return Ok(match String::from_utf8(buf) {
                Ok(line) => RequestLine::Line(line),
                Err(_) => RequestLine::BadUtf8,
            });
        }
        let len = chunk.len();
        buf.extend_from_slice(chunk);
        reader.consume(len);
        if buf.len() > max {
            return Ok(RequestLine::Oversized);
        }
    }
}

fn handle_connection(
    stream: Stream,
    served: &Mutex<Served>,
    stop: &AtomicBool,
    commands: &std::sync::atomic::AtomicU64,
    idle: Duration,
) -> io::Result<()> {
    stream.set_read_timeout(Some(idle))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    // Closes the connection after a structured error the client can act
    // on: the stream state past a framing violation is unknowable.
    let refuse = |writer: &mut Stream, message: String| -> io::Result<()> {
        commands.fetch_add(1, Ordering::SeqCst);
        writer.write_all(Response::err(message).to_wire().as_bytes())?;
        writer.flush()
    };
    loop {
        let request = match read_request(&mut reader, MAX_LINE_BYTES) {
            Ok(request) => request,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                let _ = refuse(
                    &mut writer,
                    format!("idle for {}s: closing connection", idle.as_secs()),
                );
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        let line = match request {
            RequestLine::Eof => return Ok(()),
            RequestLine::Line(line) => line,
            RequestLine::Oversized => {
                return refuse(
                    &mut writer,
                    format!("request line exceeds {MAX_LINE_BYTES} bytes"),
                );
            }
            RequestLine::BadUtf8 => {
                return refuse(&mut writer, "request is not valid UTF-8".into());
            }
            RequestLine::PartialEof(bytes) => {
                return refuse(
                    &mut writer,
                    format!("connection closed mid-line after {bytes} bytes"),
                );
            }
        };
        let response = match parse_command(&line) {
            Ok(None) => continue,
            Ok(Some(cmd)) => {
                let mut guard = served.lock().expect("session mutex poisoned");
                let seq_before = guard.session.seq();
                let mut resp = execute(&mut guard.session, cmd);
                if guard.session.seq() != seq_before {
                    if let Command::Delta(delta) = cmd {
                        let Served {
                            session,
                            persist,
                            persist_error,
                        } = &mut *guard;
                        if let Some(p) = persist.as_mut() {
                            if let Err(e) = p.record(&delta, session) {
                                // The delta is applied in memory but not
                                // durable: tell the acknowledged client,
                                // not just later `health` pollers.
                                resp.detail.push(format!(
                                    "warning persist failed: {e} (delta applied but not durable)"
                                ));
                                *persist_error = Some(e.to_string());
                            }
                        }
                    }
                }
                if cmd == Command::Health {
                    resp.detail
                        .push(match (&guard.persist, &guard.persist_error) {
                            (_, Some(m)) => format!("persist failed: {m}"),
                            (Some(_), None) => "persist on".into(),
                            (None, None) => "persist off".into(),
                        });
                }
                drop(guard);
                if cmd == Command::Shutdown {
                    commands.fetch_add(1, Ordering::SeqCst);
                    writer.write_all(resp.to_wire().as_bytes())?;
                    writer.flush()?;
                    stop.store(true, Ordering::SeqCst);
                    return Ok(());
                }
                resp
            }
            Err(msg) => Response::err(msg),
        };
        commands.fetch_add(1, Ordering::SeqCst);
        writer.write_all(response.to_wire().as_bytes())?;
        writer.flush()?;
        if stop.load(Ordering::SeqCst) {
            break;
        }
    }
    Ok(())
}

/// Executes one command against the session and formats the response.
/// Public so the soak harness and `quorumnet ctl --local` drive the
/// exact code path the server runs.
pub fn execute(session: &mut Session, cmd: Command) -> Response {
    match cmd {
        Command::Delta(delta) => {
            // Wall-clock delta latency is the one opt-in non-logical
            // metric here (the `_wall_` tag keeps it out of golden
            // comparisons); pivot counts are logical and deterministic.
            let t0 = qp_obs::enabled().then(std::time::Instant::now);
            match session.apply(&delta) {
                Ok(report) => {
                    let a = &report.answer;
                    if let Some(t0) = t0 {
                        qp_obs::counter_add("quorumd_deltas_total", 1);
                        qp_obs::observe("quorumd_delta_pivots", a.pivots as f64);
                        qp_obs::observe("quorumd_delta_wall_ms", t0.elapsed().as_secs_f64() * 1e3);
                    }
                    let mig = &report.migration;
                    let mut detail = vec![
                        format!("capacity {:.17e}", a.capacity),
                        format!("delay_ms {:.17e}", a.delay_ms),
                        format!("response_ms {:.17e}", a.response_ms),
                        format!("pivots {}", a.pivots),
                        format!("moved_mass {:.17e}", mig.moved_mass),
                        format!("delay_delta_ms {:.17e}", mig.delay_delta_ms),
                        format!("response_delta_ms {:.17e}", mig.response_delta_ms),
                    ];
                    for mv in &mig.moves {
                        detail.push(format!(
                            "move client {} quorum {} -> {} mass {:.6e}",
                            mv.client, mv.from, mv.to, mv.mass
                        ));
                    }
                    Response::ok(format!("delta applied seq={}", report.seq), detail)
                }
                Err(e) => Response::err(e.to_string()),
            }
        }
        Command::Query => {
            let s = session.status();
            let mut detail = vec![
                format!("seq {}", s.seq),
                format!("nodes {}", s.num_nodes),
                format!("quorums {}", s.num_quorums),
                format!("capacity {:.17e}", s.capacity),
                format!("delay_ms {:.17e}", s.delay_ms),
                format!("response_ms {:.17e}", s.response_ms),
                format!(
                    "crashed {}",
                    if s.crashed.is_empty() {
                        "-".to_string()
                    } else {
                        s.crashed
                            .iter()
                            .map(|w| w.to_string())
                            .collect::<Vec<_>>()
                            .join(",")
                    }
                ),
                format!(
                    "slowed {}",
                    if s.slowed.is_empty() {
                        "-".to_string()
                    } else {
                        s.slowed
                            .iter()
                            .map(|(w, f)| format!("{w}:{f}"))
                            .collect::<Vec<_>>()
                            .join(",")
                    }
                ),
                format!("warm_pivots {}", s.warm_pivots),
                format!("degraded {}", u8::from(s.degraded)),
            ];
            if let Some(p) = s.colgen {
                detail.push(format!(
                    "pricing {} of {} columns ({} generated) passes {} solves {}",
                    p.columns_in_master,
                    p.total_columns,
                    p.columns_generated,
                    p.oracle_passes,
                    p.master_resolves
                ));
            }
            Response::ok(format!("status seq={}", s.seq), detail)
        }
        Command::Snapshot => {
            let a = session.answer();
            let mut detail = vec![
                format!("capacity {:.17e}", a.capacity),
                format!("delay_ms {:.17e}", a.delay_ms),
                format!("response_ms {:.17e}", a.response_ms),
                format!("degraded {}", u8::from(session.degraded())),
            ];
            for (v, row) in a.strategy.iter().enumerate() {
                let cells: Vec<String> = row.iter().map(|p| format!("{p:.17e}")).collect();
                detail.push(format!("strategy {v} {}", cells.join(" ")));
            }
            Response::ok(format!("snapshot clients={}", a.strategy.len()), detail)
        }
        Command::Check => match session.cold_check() {
            Ok(report) => {
                let detail = vec![
                    format!("capacity_match {}", report.capacity_match),
                    format!("delay_diff {:.3e}", report.delay_diff),
                    format!("response_diff {:.3e}", report.response_diff),
                    format!("max_strategy_diff {:.3e}", report.max_strategy_diff),
                    format!("warm_pivots {}", report.warm_pivots),
                    format!("cold_pivots {}", report.cold_pivots),
                ];
                if report.ok {
                    Response::ok("check passed", detail)
                } else {
                    Response {
                        ok: false,
                        summary: "check FAILED: warm and cold answers diverge".into(),
                        detail,
                    }
                }
            }
            Err(e) => Response::err(e.to_string()),
        },
        Command::Health => {
            let s = session.status();
            let mut detail = vec![
                format!("seq {}", s.seq),
                format!("degraded {}", u8::from(s.degraded)),
            ];
            // Fold the headline metrics into the liveness probe when a
            // recorder is installed (`quorumnet serve` always installs
            // one); pollers that predate the metrics command keep
            // working — detail lines are additive.
            if let Some(line) = qp_obs::with_registry(|r| {
                format!(
                    "metrics deltas {} wal_appends {} snapshots {}",
                    r.counter("quorumd_deltas_total"),
                    r.counter("quorumd_wal_appends_total"),
                    r.counter("quorumd_snapshots_total")
                )
            }) {
                detail.push(line);
            }
            Response::ok(if s.degraded { "degraded" } else { "healthy" }, detail)
        }
        Command::Metrics => match qp_obs::with_registry(Registry::render_prometheus) {
            Some(text) => {
                let detail: Vec<String> = text.lines().map(str::to_string).collect();
                Response::ok(format!("metrics lines={}", detail.len()), detail)
            }
            None => Response::err("metrics unavailable: no recorder installed"),
        },
        Command::Shutdown => Response::ok("shutting down", Vec::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::read_response;
    use crate::session::SessionConfig;
    use qp_core::one_to_one;
    use qp_quorum::QuorumSystem;
    use qp_topology::datasets;

    fn test_session() -> Session {
        let net = datasets::euclidean_random(12, 100.0, 7);
        let sys = QuorumSystem::grid(3).unwrap();
        let placement = one_to_one::best_placement(&net, &sys).unwrap();
        let quorums = sys.enumerate(100).unwrap();
        Session::new(SessionConfig {
            net,
            quorums,
            placement,
            alpha: 12.0,
            l_opt: sys.optimal_load().unwrap_or(0.5),
            sweep_steps: 5,
            colgen: None,
        })
        .unwrap()
    }

    #[test]
    fn tcp_round_trip_with_shutdown() {
        let server = Server::bind(&Endpoint::Tcp("127.0.0.1:0".into())).unwrap();
        let addr = server.local_addr();
        let session = test_session();
        let handle = std::thread::spawn(move || server.run(session).unwrap());

        let endpoint = Endpoint::Tcp(addr);
        let stream = connect(&endpoint).unwrap();
        let mut writer = BufReader::new(stream);
        writer
            .get_mut()
            .write_all(b"query\nslowdown 2 2.0\ncheck\nbogus\nshutdown\n")
            .unwrap();
        writer.get_mut().flush().unwrap();

        let r = read_response(&mut writer).unwrap();
        assert!(r.ok, "query failed: {}", r.summary);
        assert!(r.detail.iter().any(|l| l.starts_with("capacity ")));
        let r = read_response(&mut writer).unwrap();
        assert!(r.ok, "delta failed: {}", r.summary);
        assert!(r.summary.contains("seq=1"));
        let r = read_response(&mut writer).unwrap();
        assert!(r.ok, "check failed: {} {:?}", r.summary, r.detail);
        let r = read_response(&mut writer).unwrap();
        assert!(!r.ok, "bogus command must err");
        let r = read_response(&mut writer).unwrap();
        assert!(r.ok && r.summary.contains("shutting down"));

        let summary = handle.join().unwrap();
        assert_eq!(summary.connections, 1);
        assert_eq!(summary.commands, 5);
    }

    #[test]
    fn read_request_frames_caps_and_rejects() {
        use std::io::Cursor;
        let mut c = Cursor::new(b"query\n".to_vec());
        assert_eq!(
            read_request(&mut c, 64).unwrap(),
            RequestLine::Line("query".into())
        );
        assert_eq!(read_request(&mut c, 64).unwrap(), RequestLine::Eof);

        // Oversized: a line longer than the cap, newline present or not.
        let mut c = Cursor::new(vec![b'x'; 100]);
        assert_eq!(read_request(&mut c, 64).unwrap(), RequestLine::Oversized);
        let mut long = vec![b'y'; 100];
        long.push(b'\n');
        let mut c = Cursor::new(long);
        assert_eq!(read_request(&mut c, 64).unwrap(), RequestLine::Oversized);

        // Exactly at the cap is fine.
        let mut at_cap = vec![b'z'; 64];
        at_cap.push(b'\n');
        let mut c = Cursor::new(at_cap);
        assert!(matches!(
            read_request(&mut c, 64).unwrap(),
            RequestLine::Line(l) if l.len() == 64
        ));

        // Invalid UTF-8 in a complete line.
        let mut c = Cursor::new(b"qu\xffery\n".to_vec());
        assert_eq!(read_request(&mut c, 64).unwrap(), RequestLine::BadUtf8);

        // EOF mid-line.
        let mut c = Cursor::new(b"quer".to_vec());
        assert_eq!(
            read_request(&mut c, 64).unwrap(),
            RequestLine::PartialEof(4)
        );
    }

    #[test]
    fn health_and_framing_violations_over_tcp() {
        let server = Server::bind(&Endpoint::Tcp("127.0.0.1:0".into())).unwrap();
        let addr = server.local_addr();
        let session = test_session();
        let handle = std::thread::spawn(move || server.run(session).unwrap());
        let endpoint = Endpoint::Tcp(addr);

        // health on a fresh session, and degraded surfaced in query.
        let stream = connect(&endpoint).unwrap();
        let mut conn = BufReader::new(stream);
        conn.get_mut().write_all(b"health\nquery\n").unwrap();
        let r = read_response(&mut conn).unwrap();
        assert!(r.ok && r.summary.contains("healthy"), "{r:?}");
        assert!(r.detail.iter().any(|l| l == "seq 0"));
        assert!(r.detail.iter().any(|l| l == "degraded 0"));
        assert!(r.detail.iter().any(|l| l == "persist off"));
        let r = read_response(&mut conn).unwrap();
        assert!(r.detail.iter().any(|l| l == "degraded 0"));
        drop(conn);

        // An oversized line gets a structured err, then the connection
        // closes.
        let stream = connect(&endpoint).unwrap();
        let mut conn = BufReader::new(stream);
        let mut big = vec![b'a'; MAX_LINE_BYTES + 10];
        big.push(b'\n');
        conn.get_mut().write_all(&big).unwrap();
        let r = read_response(&mut conn).unwrap();
        assert!(!r.ok && r.summary.contains("exceeds"), "{r:?}");
        assert_eq!(
            read_response(&mut conn).unwrap_err().kind(),
            std::io::ErrorKind::UnexpectedEof
        );

        // Invalid UTF-8 gets a structured err.
        let stream = connect(&endpoint).unwrap();
        let mut conn = BufReader::new(stream);
        conn.get_mut().write_all(b"que\xffry\n").unwrap();
        let r = read_response(&mut conn).unwrap();
        assert!(!r.ok && r.summary.contains("UTF-8"), "{r:?}");

        let stream = connect(&endpoint).unwrap();
        let mut conn = BufReader::new(stream);
        conn.get_mut().write_all(b"shutdown\n").unwrap();
        let r = read_response(&mut conn).unwrap();
        assert!(r.ok);
        handle.join().unwrap();
    }

    #[test]
    fn idle_connections_are_closed_with_a_notice() {
        let mut server = Server::bind(&Endpoint::Tcp("127.0.0.1:0".into())).unwrap();
        server.set_idle_timeout(Duration::from_millis(100));
        let addr = server.local_addr();
        let stop = server.stop_flag();
        let session = test_session();
        let handle = std::thread::spawn(move || server.run(session).unwrap());

        let stream = connect(&Endpoint::Tcp(addr)).unwrap();
        let mut conn = BufReader::new(stream);
        // Say nothing; the server should hang up with an err notice.
        let r = read_response(&mut conn).unwrap();
        assert!(!r.ok && r.summary.contains("idle"), "{r:?}");
        assert_eq!(
            read_response(&mut conn).unwrap_err().kind(),
            std::io::ErrorKind::UnexpectedEof
        );

        stop.store(true, Ordering::SeqCst);
        handle.join().unwrap();
    }

    #[test]
    fn persistent_server_recovers_across_restart() {
        let dir = std::env::temp_dir().join(format!("quorumd-srv-persist-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        // First life: apply two deltas under persistence, then shut down.
        let server = Server::bind(&Endpoint::Tcp("127.0.0.1:0".into())).unwrap();
        let addr = server.local_addr();
        let session = test_session();
        let persistence = crate::persist::Persistence::open(&dir, 100, &session).unwrap();
        let handle =
            std::thread::spawn(move || server.run_persistent(session, persistence).unwrap());
        let stream = connect(&Endpoint::Tcp(addr)).unwrap();
        let mut conn = BufReader::new(stream);
        conn.get_mut()
            .write_all(b"slowdown 2 2.0\ndemand 1 3.0\nhealth\nsnapshot\nshutdown\n")
            .unwrap();
        let r = read_response(&mut conn).unwrap();
        assert!(r.ok, "{r:?}");
        let r = read_response(&mut conn).unwrap();
        assert!(r.ok, "{r:?}");
        let r = read_response(&mut conn).unwrap();
        assert!(r.detail.iter().any(|l| l == "persist on"), "{r:?}");
        let first_snapshot = read_response(&mut conn).unwrap();
        assert!(first_snapshot.ok);
        read_response(&mut conn).unwrap();
        handle.join().unwrap();

        // Second life: recover and compare the full strategy dump.
        let (recovered, report) = crate::persist::recover(
            {
                let net = datasets::euclidean_random(12, 100.0, 7);
                let sys = QuorumSystem::grid(3).unwrap();
                let placement = one_to_one::best_placement(&net, &sys).unwrap();
                let quorums = sys.enumerate(100).unwrap();
                SessionConfig {
                    net,
                    quorums,
                    placement,
                    alpha: 12.0,
                    l_opt: sys.optimal_load().unwrap_or(0.5),
                    sweep_steps: 5,
                    colgen: None,
                }
            },
            &dir,
        )
        .unwrap();
        assert_eq!(recovered.seq(), 2);
        assert!(report.checked && !report.degraded);
        let mut recovered = recovered;
        let second_snapshot = execute(&mut recovered, Command::Snapshot);
        // Same shape, every number within the 1e-9 recovery discipline
        // (the warm bases differ, so bitwise equality is not promised).
        assert_eq!(first_snapshot.detail.len(), second_snapshot.detail.len());
        for (a, b) in first_snapshot.detail.iter().zip(&second_snapshot.detail) {
            for (ta, tb) in a.split_whitespace().zip(b.split_whitespace()) {
                match (ta.parse::<f64>(), tb.parse::<f64>()) {
                    (Ok(x), Ok(y)) => assert!(
                        (x - y).abs() <= 1e-9 * (1.0 + x.abs().max(y.abs())),
                        "{a} vs {b}"
                    ),
                    _ => assert_eq!(ta, tb, "{a} vs {b}"),
                }
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[cfg(unix)]
    #[test]
    fn unix_socket_round_trip() {
        let path = std::env::temp_dir().join(format!("quorumd-test-{}.sock", std::process::id()));
        let server = Server::bind(&Endpoint::Unix(path.clone())).unwrap();
        let session = test_session();
        let handle = std::thread::spawn(move || server.run(session).unwrap());

        let stream = connect(&Endpoint::Unix(path.clone())).unwrap();
        let mut reader = BufReader::new(stream);
        reader
            .get_mut()
            .write_all(b"demand 1 3.0\nshutdown\n")
            .unwrap();
        reader.get_mut().flush().unwrap();
        let r = read_response(&mut reader).unwrap();
        assert!(r.ok, "demand failed: {}", r.summary);
        let r = read_response(&mut reader).unwrap();
        assert!(r.ok);
        handle.join().unwrap();
        assert!(!path.exists(), "socket file must be cleaned up");
    }
}
