//! Live placement sessions: state, delta application, warm re-solve,
//! capacity re-tuning, migration plans, and cold cross-checks.

use qp_core::capacity::{capacity_sweep, CapacityProfile};
use qp_core::strategy_lp::{
    build_weighted_strategy_model, ColGenSolver, ColGenStats, ColumnGeneration,
};
use qp_core::{CoreError, Placement};
use qp_lp::{LpError, SimplexInstance, Solution, SolverOptions, VarId};
use qp_quorum::Quorum;
use qp_topology::Network;

use crate::protocol::Delta;

use std::fmt;

/// Relative symmetry-breaking jitter folded into every objective
/// coefficient. Large enough (vs the solver tolerance ~1e-9) to make the
/// LP optimum generically unique — so the warm path and the cold
/// cross-check land on the same vertex — and small enough (~1e-5 ms on
/// WAN delays) to be irrelevant to the answer.
const JITTER: f64 = 1e-7;

/// Everything needed to open a [`Session`].
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// The wide-area network; every node is a client.
    pub net: Network,
    /// The quorums of the deployed system.
    pub quorums: Vec<Quorum>,
    /// Placement of the universe onto network nodes.
    pub placement: Placement,
    /// Load–delay coupling `α = op_srv_time × client_demand` of the
    /// response model (4.1); `0` scores pure network delay.
    pub alpha: f64,
    /// Lower edge of the §7 uniform-capacity sweep grid (the system's
    /// optimal load `L_opt`).
    pub l_opt: f64,
    /// Number of sweep points `cᵢ = L_opt + i·(1−L_opt)/steps`.
    pub sweep_steps: usize,
    /// When set, capacity re-tunes run through the restricted-master
    /// column-generation solver over the effective-delta matrix instead
    /// of the resident full LP; pricing statistics accumulate across
    /// tunes and surface in [`Status::colgen`]. The symmetry-breaking
    /// jitter keeps the optimum unique, so answers agree with the cold
    /// cross-check either way.
    pub colgen: Option<ColumnGeneration>,
}

/// Errors from session construction or delta application.
#[derive(Debug)]
pub enum SessionError {
    /// The configuration is inconsistent.
    Config(String),
    /// A delta referenced a bad index or carried a bad value.
    BadDelta(String),
    /// No feasible strategy exists in the current state (e.g. crashes
    /// disconnected every quorum); the previous answer is kept.
    Infeasible(String),
    /// The underlying LP failed for a numerical reason.
    Lp(LpError),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Config(m) => write!(f, "config: {m}"),
            SessionError::BadDelta(m) => write!(f, "bad delta: {m}"),
            SessionError::Infeasible(m) => write!(f, "infeasible: {m}"),
            SessionError::Lp(e) => write!(f, "lp: {e}"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<LpError> for SessionError {
    fn from(e: LpError) -> Self {
        match e {
            LpError::Infeasible => SessionError::Infeasible("lp infeasible".into()),
            other => SessionError::Lp(other),
        }
    }
}

/// A tuned answer: strategies, scores, and the pivots spent reaching it.
#[derive(Debug, Clone)]
pub struct Answer {
    /// Per-client strategy rows `p_vi` (each row sums to 1, or is all
    /// zero for a client with zero demand weight).
    pub strategy: Vec<Vec<f64>>,
    /// Demand-weighted average network delay (ms) — the LP objective.
    pub delay_ms: f64,
    /// Demand-weighted average response time (ms) under the load-aware
    /// model (4.1) with per-site slowdown factors applied.
    pub response_ms: f64,
    /// The tuned uniform capacity adopted for this answer.
    pub capacity: f64,
    /// Simplex pivots spent producing this answer.
    pub pivots: u64,
}

/// One client's share of a [`MigrationPlan`].
#[derive(Debug, Clone)]
pub struct Move {
    /// Client (node index).
    pub client: usize,
    /// Quorum losing the most probability mass.
    pub from: usize,
    /// Quorum gaining the most probability mass.
    pub to: usize,
    /// Demand-weighted mass this client moves: `ŵ_v · Σᵢ max(Δp_vi, 0)`.
    pub mass: f64,
}

/// How the deployment changes between consecutive answers.
#[derive(Debug, Clone)]
pub struct MigrationPlan {
    /// Total demand-weighted probability mass that changes quorum.
    pub moved_mass: f64,
    /// Change in weighted average network delay (ms), new − old.
    pub delay_delta_ms: f64,
    /// Change in weighted average response time (ms), new − old.
    pub response_delta_ms: f64,
    /// The largest per-client moves, descending by mass (at most 5).
    pub moves: Vec<Move>,
}

/// Result of applying one delta: the new answer plus the migration plan
/// away from the previous one.
#[derive(Debug, Clone)]
pub struct DeltaReport {
    /// Sequence number of the applied delta (1-based).
    pub seq: u64,
    /// The re-tuned answer.
    pub answer: Answer,
    /// Diff against the previous answer.
    pub migration: MigrationPlan,
}

/// A point-in-time summary of the session.
#[derive(Debug, Clone)]
pub struct Status {
    /// Deltas applied so far.
    pub seq: u64,
    /// Network size (= number of clients).
    pub num_nodes: usize,
    /// Number of quorums.
    pub num_quorums: usize,
    /// Current tuned capacity.
    pub capacity: f64,
    /// Current weighted delay (ms).
    pub delay_ms: f64,
    /// Current weighted response (ms).
    pub response_ms: f64,
    /// Currently crashed nodes.
    pub crashed: Vec<usize>,
    /// Sites with slowdown factor ≠ 1, as `(site, factor)`.
    pub slowed: Vec<(usize, f64)>,
    /// Total pivots spent by the warm path across all deltas.
    pub warm_pivots: u64,
    /// Whether the session is pinned on its last-good answer because the
    /// most recent delta left the LP infeasible (or the solver errored).
    pub degraded: bool,
    /// Accumulated pricing statistics when the session tunes through
    /// column generation ([`SessionConfig::colgen`]); `None` on the
    /// resident-LP path.
    pub colgen: Option<ColGenStats>,
}

/// Outcome of a warm-vs-cold cross-check ([`Session::cold_check`]).
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// All diffs within 1e-9 (relative) and capacities identical.
    pub ok: bool,
    /// The cold rebuild tuned to the identical capacity.
    pub capacity_match: bool,
    /// |warm − cold| weighted delay.
    pub delay_diff: f64,
    /// |warm − cold| weighted response.
    pub response_diff: f64,
    /// Max entrywise strategy difference.
    pub max_strategy_diff: f64,
    /// Pivots the warm path spent on the current answer.
    pub warm_pivots: u64,
    /// Pivots the cold rebuild spent.
    pub cold_pivots: u64,
}

/// The minimal mutable state a persisted snapshot must carry to
/// reproduce a session: everything else is a pure function of the
/// [`SessionConfig`]. Replaying this through
/// [`Session::restore_state`] and re-tuning lands on the identical
/// answer (the jittered optimum is unique).
#[derive(Debug, Clone, PartialEq)]
pub struct PersistedState {
    /// Deltas applied so far.
    pub seq: u64,
    /// Raw (unnormalized) per-client demand weights.
    pub raw_weights: Vec<f64>,
    /// Per-site service slowdown factors.
    pub slowdown: Vec<f64>,
    /// Currently crashed nodes, ascending.
    pub crashed: Vec<usize>,
}

/// An owned snapshot of everything a cold recompute needs — safe to ship
/// to another thread and replay with [`cold_recompute`].
#[derive(Debug, Clone)]
pub struct ColdInputs {
    delta_eff: Vec<Vec<f64>>,
    weights: Vec<f64>,
    node_counts: Vec<Vec<(usize, f64)>>,
    hosts: Vec<Vec<usize>>,
    dist: Vec<Vec<f64>>,
    slowdown: Vec<f64>,
    crashed: Vec<bool>,
    loaded: Vec<bool>,
    alpha: f64,
    l_opt: f64,
    sweep_steps: usize,
}

/// A live placement session: topology + placement + resident warm LP.
pub struct Session {
    // Immutable geometry.
    quorums: Vec<Quorum>,
    hosts: Vec<Vec<usize>>,
    node_counts: Vec<Vec<(usize, f64)>>,
    loaded: Vec<bool>,
    dist: Vec<Vec<f64>>,
    jitter: Vec<Vec<f64>>,
    alpha: f64,
    l_opt: f64,
    sweep_steps: usize,
    // Live state.
    raw_weights: Vec<f64>,
    weights: Vec<f64>,
    slowdown: Vec<f64>,
    crashed: Vec<bool>,
    seq: u64,
    // Resident LP.
    instance: SimplexInstance,
    conv_rows: Vec<usize>,
    cap_rows: Vec<(usize, usize)>,
    delta_eff: Vec<Vec<f64>>,
    capacity: f64,
    // Current answer and counters.
    current: Answer,
    warm_pivots: u64,
    degraded: bool,
    // Column-generation mode: config, per-node element counts (the
    // capacity-row layout), and accumulated pricing statistics.
    colgen: Option<ColumnGeneration>,
    element_counts: Vec<usize>,
    pricing: Option<ColGenStats>,
}

impl Session {
    /// Opens a session: builds the resident LP, cold-solves it once at
    /// the loosest capacity, and tunes to the response-minimizing sweep
    /// point.
    ///
    /// # Errors
    ///
    /// [`SessionError::Config`] on inconsistent inputs,
    /// [`SessionError::Infeasible`] if even the loosest capacity admits
    /// no strategy.
    pub fn new(cfg: SessionConfig) -> Result<Session, SessionError> {
        let n = cfg.net.len();
        let m = cfg.quorums.len();
        let bad = |m: String| Err(SessionError::Config(m));
        if n == 0 {
            return bad("empty network".into());
        }
        if m == 0 {
            return bad("no quorums".into());
        }
        if cfg.placement.num_nodes() != n {
            return bad(format!(
                "placement covers {} nodes, network has {n}",
                cfg.placement.num_nodes()
            ));
        }
        let universe = cfg.placement.universe_size();
        if cfg
            .quorums
            .iter()
            .flat_map(|q| q.iter())
            .any(|e| e.index() >= universe)
        {
            return bad(format!("quorum element outside universe of {universe}"));
        }
        if !cfg.alpha.is_finite() || cfg.alpha < 0.0 {
            return bad(format!("alpha {} must be finite and ≥ 0", cfg.alpha));
        }
        if !(0.0..=1.0).contains(&cfg.l_opt) {
            return bad(format!("l_opt {} must lie in [0, 1]", cfg.l_opt));
        }
        if cfg.sweep_steps == 0 {
            return bad("sweep_steps must be ≥ 1".into());
        }

        // Geometry: hosts in element order (repeats preserved — they are
        // what make many-to-one load coefficients > 1), and per-quorum
        // sorted (node, element-count) pairs.
        let element_counts = cfg.placement.element_counts();
        let mut hosts: Vec<Vec<usize>> = Vec::with_capacity(m);
        let mut node_counts: Vec<Vec<(usize, f64)>> = Vec::with_capacity(m);
        let mut loaded = vec![false; n];
        for q in &cfg.quorums {
            let hs: Vec<usize> = q.iter().map(|e| cfg.placement.node_of(e).index()).collect();
            let mut counts: Vec<(usize, f64)> = Vec::new();
            for &w in &hs {
                loaded[w] = true;
                match counts.binary_search_by_key(&w, |&(j, _)| j) {
                    Ok(pos) => counts[pos].1 += 1.0,
                    Err(pos) => counts.insert(pos, (w, 1.0)),
                }
            }
            hosts.push(hs);
            node_counts.push(counts);
        }
        // Placement can load nodes through elements no enumerated quorum
        // uses; those never bind either.
        let dist: Vec<Vec<f64>> = (0..n)
            .map(|v| {
                (0..n)
                    .map(|w| {
                        cfg.net
                            .distance(qp_topology::NodeId::new(v), qp_topology::NodeId::new(w))
                    })
                    .collect()
            })
            .collect();
        let jitter: Vec<Vec<f64>> = (0..n)
            .map(|v| {
                (0..m)
                    .map(|i| {
                        let h = qp_par::job_seed(0x71d_5eed, v * m + i);
                        1.0 + JITTER * ((h >> 11) as f64 / (1u64 << 53) as f64)
                    })
                    .collect()
            })
            .collect();

        let raw_weights = vec![1.0; n];
        let weights = vec![1.0 / n as f64; n];
        let slowdown = vec![1.0; n];
        let crashed = vec![false; n];
        let delta_eff = effective_delta(&dist, &slowdown, &hosts, &jitter);

        // Resident LP at the loosest capacity (1.0 — one-to-one loads
        // never exceed it), then tune down.
        let cap_rhs: Vec<f64> = (0..n)
            .map(|w| if loaded[w] { 1.0 } else { f64::INFINITY })
            .collect();
        let lp = build_weighted_strategy_model(&delta_eff, &weights, &node_counts, n, &cap_rhs)
            .map_err(|e| SessionError::Config(e.to_string()))?;
        let instance = SimplexInstance::new(lp.model, SolverOptions::factored())?;

        let mut session = Session {
            quorums: cfg.quorums,
            hosts,
            node_counts,
            loaded,
            dist,
            jitter,
            alpha: cfg.alpha,
            l_opt: cfg.l_opt,
            sweep_steps: cfg.sweep_steps,
            raw_weights,
            weights,
            slowdown,
            crashed,
            seq: 0,
            instance,
            conv_rows: lp.conv_rows,
            cap_rows: lp.cap_rows,
            delta_eff,
            capacity: 1.0,
            current: Answer {
                strategy: Vec::new(),
                delay_ms: 0.0,
                response_ms: 0.0,
                capacity: 1.0,
                pivots: 0,
            },
            warm_pivots: 0,
            degraded: false,
            colgen: cfg.colgen,
            element_counts,
            pricing: None,
        };
        let (answer, _pivots) = session.tune()?;
        session.current = answer;
        Ok(session)
    }

    /// The current tuned answer.
    pub fn answer(&self) -> &Answer {
        &self.current
    }

    /// Number of clients (= network nodes).
    pub fn num_clients(&self) -> usize {
        self.weights.len()
    }

    /// Number of quorums.
    pub fn num_quorums(&self) -> usize {
        self.quorums.len()
    }

    /// Deltas applied so far (the sequence number of the last one).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Whether the session is pinned on its last-good answer because
    /// the most recent delta left the LP infeasible or the solver
    /// errored. A later delta that tunes cleanly (e.g. a `restore`)
    /// clears the flag.
    pub fn degraded(&self) -> bool {
        self.degraded
    }

    /// The minimal mutable state a snapshot needs to reproduce this
    /// session (see [`PersistedState`]).
    pub fn persisted_state(&self) -> PersistedState {
        PersistedState {
            seq: self.seq,
            raw_weights: self.raw_weights.clone(),
            slowdown: self.slowdown.clone(),
            crashed: (0..self.crashed.len())
                .filter(|&w| self.crashed[w])
                .collect(),
        }
    }

    /// Restores a freshly opened session to a persisted state in one
    /// shot: bulk-edits the resident LP (demand rhs, slowdown
    /// objectives, crash capacities), forces the sequence number, and
    /// re-tunes once. An infeasible restored state is not an error —
    /// the session comes back [`degraded`](Self::degraded), pinned on
    /// its pre-restore answer, exactly as if the deltas had been
    /// applied live.
    ///
    /// # Errors
    ///
    /// [`SessionError::Config`] when the state's dimensions or values
    /// don't fit this session; [`SessionError::Lp`] only on solver
    /// failures outside the tune itself.
    pub fn restore_state(&mut self, state: &PersistedState) -> Result<(), SessionError> {
        let n = self.weights.len();
        let bad = |m: String| Err(SessionError::Config(m));
        if state.raw_weights.len() != n || state.slowdown.len() != n {
            return bad(format!(
                "persisted state sized for {} weights / {} sites, session has {n} nodes",
                state.raw_weights.len(),
                state.slowdown.len()
            ));
        }
        if state.raw_weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return bad("persisted demand weight must be finite and ≥ 0".into());
        }
        let total: f64 = state.raw_weights.iter().sum();
        if total <= 0.0 {
            return bad("persisted demand weights sum to zero".into());
        }
        if state.slowdown.iter().any(|f| !f.is_finite() || *f <= 0.0) {
            return bad("persisted slowdown factor must be finite and > 0".into());
        }
        if state.crashed.iter().any(|&w| w >= n) {
            return bad(format!("persisted crashed node out of range for {n} nodes"));
        }

        self.raw_weights = state.raw_weights.clone();
        for v in 0..n {
            self.weights[v] = self.raw_weights[v] / total;
            self.instance.set_rhs(self.conv_rows[v], self.weights[v]);
        }
        let changed: Vec<usize> = (0..n)
            .filter(|&w| state.slowdown[w] != self.slowdown[w])
            .collect();
        self.slowdown = state.slowdown.clone();
        for w in changed {
            self.refresh_objective_for_site(w)?;
        }
        for &w in &state.crashed {
            self.crashed[w] = true;
            if let Some(row) = self.cap_row_of(w) {
                self.instance.set_rhs(row, 0.0);
            }
        }
        self.seq = state.seq;

        match self.tune() {
            Ok((answer, _pivots)) => {
                self.degraded = false;
                self.current = answer;
                Ok(())
            }
            Err(SessionError::Infeasible(_)) | Err(SessionError::Lp(_)) => {
                self.degraded = true;
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    /// Point-in-time summary.
    pub fn status(&self) -> Status {
        Status {
            seq: self.seq,
            num_nodes: self.weights.len(),
            num_quorums: self.quorums.len(),
            capacity: self.capacity,
            delay_ms: self.current.delay_ms,
            response_ms: self.current.response_ms,
            crashed: (0..self.crashed.len())
                .filter(|&w| self.crashed[w])
                .collect(),
            slowed: (0..self.slowdown.len())
                .filter(|&w| self.slowdown[w] != 1.0)
                .map(|w| (w, self.slowdown[w]))
                .collect(),
            warm_pivots: self.warm_pivots,
            degraded: self.degraded,
            colgen: self.pricing,
        }
    }

    /// Applies one delta: edits the resident LP in place, re-solves
    /// warm, re-tunes the capacity, and reports the migration plan.
    ///
    /// # Errors
    ///
    /// [`SessionError::BadDelta`] leaves the session untouched;
    /// [`SessionError::Infeasible`] means the delta was recorded (the
    /// state advanced) but no feasible strategy exists until a
    /// counteracting delta (e.g. a `restore`) arrives — the previous
    /// answer is kept.
    pub fn apply(&mut self, delta: &Delta) -> Result<DeltaReport, SessionError> {
        let n = self.weights.len();
        match *delta {
            Delta::Slowdown { site, factor } => {
                if site >= n {
                    return Err(SessionError::BadDelta(format!(
                        "site {site} out of range for {n} nodes"
                    )));
                }
                if !factor.is_finite() || factor <= 0.0 {
                    return Err(SessionError::BadDelta(format!(
                        "slowdown factor {factor} must be finite and > 0"
                    )));
                }
                self.slowdown[site] = factor;
                self.refresh_objective_for_site(site)?;
            }
            Delta::Demand { loc, weight } => {
                if loc >= n {
                    return Err(SessionError::BadDelta(format!(
                        "client {loc} out of range for {n} nodes"
                    )));
                }
                if !weight.is_finite() || weight < 0.0 {
                    return Err(SessionError::BadDelta(format!(
                        "demand weight {weight} must be finite and ≥ 0"
                    )));
                }
                let old = self.raw_weights[loc];
                self.raw_weights[loc] = weight;
                let total: f64 = self.raw_weights.iter().sum();
                if total <= 0.0 {
                    self.raw_weights[loc] = old;
                    return Err(SessionError::BadDelta(
                        "total demand would drop to zero".into(),
                    ));
                }
                for v in 0..n {
                    self.weights[v] = self.raw_weights[v] / total;
                    self.instance.set_rhs(self.conv_rows[v], self.weights[v]);
                }
            }
            Delta::Crash { node } => {
                if node >= n {
                    return Err(SessionError::BadDelta(format!(
                        "node {node} out of range for {n} nodes"
                    )));
                }
                if self.crashed[node] {
                    return Err(SessionError::BadDelta(format!(
                        "node {node} is already crashed"
                    )));
                }
                self.crashed[node] = true;
                if let Some(row) = self.cap_row_of(node) {
                    self.instance.set_rhs(row, 0.0);
                }
            }
            Delta::Restore { node } => {
                if node >= n {
                    return Err(SessionError::BadDelta(format!(
                        "node {node} out of range for {n} nodes"
                    )));
                }
                self.crashed[node] = false;
                if let Some(row) = self.cap_row_of(node) {
                    self.instance.set_rhs(row, self.capacity);
                }
                if self.slowdown[node] != 1.0 {
                    self.slowdown[node] = 1.0;
                    self.refresh_objective_for_site(node)?;
                }
            }
        }
        self.seq += 1;

        let old = self.current.clone();
        let (answer, _pivots) = match self.tune() {
            Ok(tuned) => {
                self.degraded = false;
                tuned
            }
            Err(e) => {
                // The delta is recorded (seq advanced) but the LP could
                // not re-tune: pin the last-good answer and flag the
                // session degraded until a counteracting delta lands.
                if matches!(e, SessionError::Infeasible(_) | SessionError::Lp(_)) {
                    self.degraded = true;
                }
                return Err(e);
            }
        };
        let migration = self.migration_plan(&old, &answer);
        self.current = answer.clone();
        Ok(DeltaReport {
            seq: self.seq,
            answer,
            migration,
        })
    }

    /// Rebuilds the whole problem from scratch — fresh model, cold
    /// solves across the sweep — and compares against the resident
    /// warm answer. The protocol's `check` command.
    ///
    /// # Errors
    ///
    /// [`SessionError::Infeasible`] if the cold rebuild finds no
    /// feasible sweep point (the warm path would have reported the same
    /// on its last delta).
    pub fn cold_check(&self) -> Result<CheckReport, SessionError> {
        let (cold, cold_pivots) = cold_recompute(&self.cold_inputs())?;
        let warm = &self.current;
        let rel = |a: f64, b: f64| (a - b).abs() / (1.0 + a.abs().max(b.abs()));
        let delay_diff = rel(warm.delay_ms, cold.delay_ms);
        let response_diff = rel(warm.response_ms, cold.response_ms);
        let capacity_match = warm.capacity == cold.capacity;
        let mut max_strategy_diff: f64 = 0.0;
        for (wr, cr) in warm.strategy.iter().zip(&cold.strategy) {
            for (a, b) in wr.iter().zip(cr) {
                max_strategy_diff = max_strategy_diff.max((a - b).abs());
            }
        }
        let tol = 1e-9;
        Ok(CheckReport {
            ok: capacity_match
                && delay_diff <= tol
                && response_diff <= tol
                && max_strategy_diff <= tol,
            capacity_match,
            delay_diff,
            response_diff,
            max_strategy_diff,
            warm_pivots: warm.pivots,
            cold_pivots,
        })
    }

    /// Snapshots everything a cold recompute needs (for out-of-band
    /// cross-checking, e.g. the soak harness fanning cold replays over
    /// a thread pool).
    pub fn cold_inputs(&self) -> ColdInputs {
        ColdInputs {
            delta_eff: self.delta_eff.clone(),
            weights: self.weights.clone(),
            node_counts: self.node_counts.clone(),
            hosts: self.hosts.clone(),
            dist: self.dist.clone(),
            slowdown: self.slowdown.clone(),
            crashed: self.crashed.clone(),
            loaded: self.loaded.clone(),
            alpha: self.alpha,
            l_opt: self.l_opt,
            sweep_steps: self.sweep_steps,
        }
    }

    /// Capacity row for `node`, if it has one.
    fn cap_row_of(&self, node: usize) -> Option<usize> {
        self.cap_rows
            .iter()
            .find(|&&(w, _)| w == node)
            .map(|&(_, row)| row)
    }

    /// Recomputes `δ'(v, i)` for every quorum touching `site` and pushes
    /// the changed objective coefficients into the resident instance —
    /// the primal-warm-start path.
    fn refresh_objective_for_site(&mut self, site: usize) -> Result<(), SessionError> {
        let m = self.quorums.len();
        let n = self.weights.len();
        for i in 0..m {
            if self.node_counts[i]
                .binary_search_by_key(&site, |&(j, _)| j)
                .is_err()
            {
                continue;
            }
            for v in 0..n {
                let mut d = f64::MIN;
                for &w in &self.hosts[i] {
                    d = d.max(self.dist[v][w] * self.slowdown[w]);
                }
                let val = d * self.jitter[v][i];
                if val != self.delta_eff[v][i] {
                    self.delta_eff[v][i] = val;
                    self.instance
                        .set_objective(VarId::from_index(v * m + i), val)?;
                }
            }
        }
        Ok(())
    }

    /// Re-solves at the current right-hand sides (clearing any pending
    /// objective change through the primal warm path), sweeps the
    /// capacity grid warm, adopts the response-minimizing point, and
    /// returns the tuned answer plus the pivots spent.
    fn tune(&mut self) -> Result<(Answer, u64), SessionError> {
        if self.colgen.is_some() {
            return self.tune_colgen();
        }
        let mut pivots: u64 = 0;
        // Step 1: re-establish an optimal basis at the current state.
        // After an objective delta this is the primal warm re-solve; a
        // crash at tight capacity can make it infeasible, which is fine
        // — the sweep below hunts for a capacity that works.
        match self.instance.resolve() {
            Ok(sol) => pivots += sol.stats().iterations as u64,
            Err(LpError::Infeasible) => {}
            Err(e) => return Err(e.into()),
        }
        // Step 2: warm sweep over the capacity grid.
        let grid = capacity_sweep(self.l_opt, self.sweep_steps);
        let mut best: Option<(f64, f64)> = None; // (score, capacity)
        for &c in &grid {
            let updates: Vec<(usize, f64)> = self
                .cap_rows
                .iter()
                .map(|&(w, row)| (row, if self.crashed[w] { 0.0 } else { c }))
                .collect();
            let sol = match self.instance.resolve_with_rhs(&updates) {
                Ok(sol) => sol,
                Err(LpError::Infeasible) => continue,
                Err(e) => return Err(e.into()),
            };
            pivots += sol.stats().iterations as u64;
            let q = self.q_matrix(&sol);
            let score = weighted_response(
                &q,
                &self.hosts,
                &self.node_counts,
                &self.dist,
                &self.slowdown,
                self.alpha,
            );
            if best.is_none_or(|(s, _)| score < s) {
                best = Some((score, c));
            }
        }
        let Some((_, best_c)) = best else {
            return Err(SessionError::Infeasible(
                "no sweep capacity admits a strategy — restore nodes".into(),
            ));
        };
        // Step 3: adopt the winner and land the resident basis on it.
        for &(w, row) in &self.cap_rows {
            self.instance
                .set_rhs(row, if self.crashed[w] { 0.0 } else { best_c });
        }
        self.capacity = best_c;
        let sol = self.instance.resolve()?;
        pivots += sol.stats().iterations as u64;
        let q = self.q_matrix(&sol);
        let response = weighted_response(
            &q,
            &self.hosts,
            &self.node_counts,
            &self.dist,
            &self.slowdown,
            self.alpha,
        );
        let answer = Answer {
            strategy: strategies(&q, &self.weights),
            delay_ms: sol.objective(),
            response_ms: response,
            capacity: best_c,
            pivots,
        };
        self.warm_pivots += pivots;
        Ok((answer, pivots))
    }

    /// [`tune`](Self::tune) through the restricted-master
    /// column-generation solver: a fresh master over the *current*
    /// effective-delta matrix (slowdowns and jitter included) sweeps the
    /// same capacity grid, generating columns to proven optimality at
    /// each point. Columns accumulate across the sweep inside one master,
    /// so later points re-solve warm; pricing statistics accumulate in
    /// [`Status::colgen`]. The jittered optimum is unique, so the answer
    /// matches the resident-LP path to cross-check accuracy.
    fn tune_colgen(&mut self) -> Result<(Answer, u64), SessionError> {
        let cfg = self.colgen.clone().expect("colgen tune without config");
        let n = self.weights.len();
        let to_err = |e: CoreError| match e {
            CoreError::Infeasible => SessionError::Infeasible("lp infeasible".into()),
            CoreError::Lp(lp) => SessionError::Lp(lp),
            other => SessionError::Config(other.to_string()),
        };
        let mut solver = ColGenSolver::from_matrix(
            &self.delta_eff,
            &self.node_counts,
            &self.element_counts,
            &self.weights,
            cfg,
        )
        .map_err(to_err)?;
        let caps_at = |c: f64| {
            CapacityProfile::from_values(
                (0..n)
                    .map(|w| if self.crashed[w] { 0.0 } else { c })
                    .collect(),
            )
        };
        let mut pivots: u64 = 0;
        let mut agg = self.pricing;
        let absorb = |agg: &mut Option<ColGenStats>, stats: Option<ColGenStats>| {
            let Some(stats) = stats else { return };
            *agg = Some(match *agg {
                None => stats,
                Some(prev) => ColGenStats {
                    // One shared master: latest column census, summed work.
                    columns_in_master: stats.columns_in_master,
                    total_columns: stats.total_columns,
                    columns_generated: prev.columns_generated + stats.columns_generated,
                    oracle_passes: prev.oracle_passes + stats.oracle_passes,
                    master_resolves: prev.master_resolves + stats.master_resolves,
                },
            });
        };
        let grid = capacity_sweep(self.l_opt, self.sweep_steps);
        let mut best: Option<(f64, f64)> = None; // (score, capacity)
        for &c in &grid {
            let outcome = match solver.solve_profile(&caps_at(c)) {
                Ok(outcome) => outcome,
                Err(CoreError::Infeasible) => continue,
                Err(e) => return Err(to_err(e)),
            };
            pivots += outcome.stats.iterations as u64;
            absorb(&mut agg, outcome.colgen);
            let q = self.q_from_strategy(&outcome.strategy);
            let score = weighted_response(
                &q,
                &self.hosts,
                &self.node_counts,
                &self.dist,
                &self.slowdown,
                self.alpha,
            );
            if best.is_none_or(|(s, _)| score < s) {
                best = Some((score, c));
            }
        }
        let Some((_, best_c)) = best else {
            return Err(SessionError::Infeasible(
                "no sweep capacity admits a strategy — restore nodes".into(),
            ));
        };
        // Land on the winner; the master already holds its columns, so
        // this re-solve is warm and generates nothing new.
        let outcome = solver.solve_profile(&caps_at(best_c)).map_err(to_err)?;
        pivots += outcome.stats.iterations as u64;
        absorb(&mut agg, outcome.colgen);
        let q = self.q_from_strategy(&outcome.strategy);
        let response = weighted_response(
            &q,
            &self.hosts,
            &self.node_counts,
            &self.dist,
            &self.slowdown,
            self.alpha,
        );
        drop(solver);
        self.capacity = best_c;
        self.pricing = agg;
        // Keep the (unsolved) resident LP's capacities in step with the
        // adopted answer, mirroring the resident-path invariant.
        for row_idx in 0..self.cap_rows.len() {
            let (w, row) = self.cap_rows[row_idx];
            self.instance
                .set_rhs(row, if self.crashed[w] { 0.0 } else { best_c });
        }
        let answer = Answer {
            strategy: strategies(&q, &self.weights),
            delay_ms: outcome.delay_ms,
            response_ms: response,
            capacity: best_c,
            pivots,
        };
        self.warm_pivots += pivots;
        Ok((answer, pivots))
    }

    /// The weighted `q = ŵ_v · p_vi` matrix from a column-generation
    /// strategy (rows of zero-weight clients collapse to all-zero,
    /// matching the resident LP's convention).
    fn q_from_strategy(&self, strategy: &qp_quorum::StrategyMatrix) -> Vec<Vec<f64>> {
        (0..self.weights.len())
            .map(|v| {
                let w = self.weights[v];
                strategy.row(v).iter().map(|&p| w * p).collect()
            })
            .collect()
    }

    /// Extracts the `q` matrix from a solution of the resident LP.
    fn q_matrix(&self, sol: &Solution) -> Vec<Vec<f64>> {
        let m = self.quorums.len();
        (0..self.weights.len())
            .map(|v| {
                (0..m)
                    .map(|i| sol.value(VarId::from_index(v * m + i)).max(0.0))
                    .collect()
            })
            .collect()
    }

    /// Diffs two answers into a migration plan.
    fn migration_plan(&self, old: &Answer, new: &Answer) -> MigrationPlan {
        let mut moved_mass = 0.0;
        let mut moves: Vec<Move> = Vec::new();
        for (v, (or, nr)) in old.strategy.iter().zip(&new.strategy).enumerate() {
            let mut gained = 0.0f64;
            let (mut from, mut from_drop) = (0usize, 0.0f64);
            let (mut to, mut to_gain) = (0usize, 0.0f64);
            for (i, (&o, &nw)) in or.iter().zip(nr).enumerate() {
                let d = nw - o;
                if d > 0.0 {
                    gained += d;
                    if d > to_gain {
                        to_gain = d;
                        to = i;
                    }
                } else if -d > from_drop {
                    from_drop = -d;
                    from = i;
                }
            }
            let mass = self.weights[v] * gained;
            moved_mass += mass;
            if mass > 1e-12 {
                moves.push(Move {
                    client: v,
                    from,
                    to,
                    mass,
                });
            }
        }
        moves.sort_by(|a, b| {
            b.mass
                .partial_cmp(&a.mass)
                .unwrap()
                .then(a.client.cmp(&b.client))
        });
        moves.truncate(5);
        MigrationPlan {
            moved_mass,
            delay_delta_ms: new.delay_ms - old.delay_ms,
            response_delta_ms: new.response_ms - old.response_ms,
            moves,
        }
    }
}

/// The effective objective matrix: `δ'(v,i) = max_{w ∈ hosts(i)}
/// d(v,w)·σ_w`, scaled by the per-variable symmetry-breaking jitter.
fn effective_delta(
    dist: &[Vec<f64>],
    slowdown: &[f64],
    hosts: &[Vec<usize>],
    jitter: &[Vec<f64>],
) -> Vec<Vec<f64>> {
    let n = dist.len();
    let m = hosts.len();
    (0..n)
        .map(|v| {
            (0..m)
                .map(|i| {
                    let mut d = f64::MIN;
                    for &w in &hosts[i] {
                        d = d.max(dist[v][w] * slowdown[w]);
                    }
                    d * jitter[v][i]
                })
                .collect()
        })
        .collect()
}

/// Demand-weighted average response time of a `q` solution under the
/// load-aware model (4.1) with slowdown-scaled distances. `Σ q = 1`, so
/// the plain double sum is already the weighted average.
fn weighted_response(
    q: &[Vec<f64>],
    hosts: &[Vec<usize>],
    node_counts: &[Vec<(usize, f64)>],
    dist: &[Vec<f64>],
    slowdown: &[f64],
    alpha: f64,
) -> f64 {
    let m = hosts.len();
    // Per-node weighted load from q.
    let mut qsum = vec![0.0f64; m];
    for row in q {
        for (i, &qi) in row.iter().enumerate() {
            qsum[i] += qi;
        }
    }
    let n_nodes = dist.len();
    let mut loads = vec![0.0f64; n_nodes];
    for (i, counts) in node_counts.iter().enumerate() {
        for &(w, cnt) in counts {
            loads[w] += cnt * qsum[i];
        }
    }
    let mut total = 0.0;
    for (v, row) in q.iter().enumerate() {
        for (i, &qi) in row.iter().enumerate() {
            if qi <= 0.0 {
                continue;
            }
            let mut rho = f64::MIN;
            for &w in &hosts[i] {
                rho = rho.max(dist[v][w] * slowdown[w] + alpha * loads[w]);
            }
            total += qi * rho;
        }
    }
    total
}

/// Recovers normalized per-client strategies `p = q / ŵ` (rows of a
/// zero-weight client stay all-zero).
fn strategies(q: &[Vec<f64>], weights: &[f64]) -> Vec<Vec<f64>> {
    q.iter()
        .zip(weights)
        .map(|(row, _w)| {
            let total: f64 = row.iter().sum();
            if total > 0.0 {
                row.iter().map(|&qi| qi / total).collect()
            } else {
                row.clone()
            }
        })
        .collect()
}

/// Replays a [`ColdInputs`] snapshot from scratch: fresh model per sweep
/// point, cold solves all the way down, identical tuning rule. Returns
/// the answer and the pivots spent. Pure function of the snapshot —
/// bit-identical results at any thread count.
///
/// # Errors
///
/// [`SessionError::Infeasible`] if no sweep point admits a strategy.
pub fn cold_recompute(inp: &ColdInputs) -> Result<(Answer, u64), SessionError> {
    let n = inp.weights.len();
    let grid = capacity_sweep(inp.l_opt, inp.sweep_steps);
    let mut pivots: u64 = 0;
    let mut best: Option<(f64, f64)> = None;
    let options = SolverOptions::factored();
    let solve_at = |c: f64, pivots: &mut u64| -> Result<Option<Solution>, SessionError> {
        let cap_rhs: Vec<f64> = (0..n)
            .map(|w| {
                if !inp.loaded[w] {
                    f64::INFINITY
                } else if inp.crashed[w] {
                    0.0
                } else {
                    c
                }
            })
            .collect();
        let lp = build_weighted_strategy_model(
            &inp.delta_eff,
            &inp.weights,
            &inp.node_counts,
            n,
            &cap_rhs,
        )
        .map_err(|e| SessionError::Config(e.to_string()))?;
        match lp.model.solve_with(&options) {
            Ok(sol) => {
                *pivots += sol.stats().iterations as u64;
                Ok(Some(sol))
            }
            Err(LpError::Infeasible) => Ok(None),
            Err(e) => Err(e.into()),
        }
    };
    let m = inp.hosts.len();
    let q_of = |sol: &Solution| -> Vec<Vec<f64>> {
        (0..n)
            .map(|v| {
                (0..m)
                    .map(|i| sol.value(VarId::from_index(v * m + i)).max(0.0))
                    .collect()
            })
            .collect()
    };
    for &c in &grid {
        let Some(sol) = solve_at(c, &mut pivots)? else {
            continue;
        };
        let q = q_of(&sol);
        let score = weighted_response(
            &q,
            &inp.hosts,
            &inp.node_counts,
            &inp.dist,
            &inp.slowdown,
            inp.alpha,
        );
        if best.is_none_or(|(s, _)| score < s) {
            best = Some((score, c));
        }
    }
    let Some((_, best_c)) = best else {
        return Err(SessionError::Infeasible(
            "no sweep capacity admits a strategy".into(),
        ));
    };
    let sol = solve_at(best_c, &mut pivots)?.ok_or_else(|| {
        SessionError::Infeasible("winning sweep point turned infeasible on re-solve".into())
    })?;
    let q = q_of(&sol);
    let response = weighted_response(
        &q,
        &inp.hosts,
        &inp.node_counts,
        &inp.dist,
        &inp.slowdown,
        inp.alpha,
    );
    Ok((
        Answer {
            strategy: strategies(&q, &inp.weights),
            delay_ms: sol.objective(),
            response_ms: response,
            capacity: best_c,
            pivots,
        },
        pivots,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qp_core::one_to_one;
    use qp_quorum::QuorumSystem;
    use qp_topology::datasets;

    fn session_with(steps: usize, colgen: Option<ColumnGeneration>) -> Session {
        let net = datasets::euclidean_random(12, 100.0, 7);
        let sys = QuorumSystem::grid(3).unwrap();
        let placement = one_to_one::best_placement(&net, &sys).unwrap();
        let quorums = sys.enumerate(100).unwrap();
        Session::new(SessionConfig {
            net,
            quorums,
            placement,
            alpha: 12.0,
            l_opt: sys.optimal_load().unwrap_or(0.5),
            sweep_steps: steps,
            colgen,
        })
        .unwrap()
    }

    fn session(steps: usize) -> Session {
        session_with(steps, None)
    }

    #[test]
    fn initial_answer_is_a_tuned_distribution() {
        let s = session(6);
        let a = s.answer();
        assert_eq!(a.strategy.len(), 12);
        for row in &a.strategy {
            let total: f64 = row.iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "row sums to {total}");
            assert!(row.iter().all(|&p| p >= 0.0));
        }
        assert!(a.delay_ms > 0.0 && a.response_ms >= a.delay_ms);
        assert!(a.capacity > 0.0 && a.capacity <= 1.0);
    }

    #[test]
    fn every_delta_kind_passes_the_cold_cross_check() {
        let mut s = session(6);
        let deltas = [
            Delta::Slowdown {
                site: 3,
                factor: 2.5,
            },
            Delta::Demand {
                loc: 1,
                weight: 4.0,
            },
            Delta::Crash { node: 5 },
            Delta::Slowdown {
                site: 0,
                factor: 1.7,
            },
            Delta::Restore { node: 5 },
        ];
        for d in &deltas {
            let report = s.apply(d).unwrap();
            assert!(report.answer.pivots > 0 || report.migration.moved_mass == 0.0);
            let check = s.cold_check().unwrap();
            assert!(
                check.ok,
                "cross-check failed after {d:?}: cap_match={} delay={} resp={} strat={}",
                check.capacity_match,
                check.delay_diff,
                check.response_diff,
                check.max_strategy_diff
            );
        }
    }

    #[test]
    fn slowdown_steers_mass_away_and_restore_brings_it_back() {
        let mut s = session(6);
        let before = s.answer().clone();
        // Find a node that carries mass, then slow it hard.
        let loaded_site = s
            .cap_rows
            .iter()
            .map(|&(w, _)| w)
            .next()
            .expect("some loaded node");
        let r1 = s
            .apply(&Delta::Slowdown {
                site: loaded_site,
                factor: 10.0,
            })
            .unwrap();
        assert!(r1.answer.response_ms >= before.response_ms - 1e-9);
        let r2 = s.apply(&Delta::Restore { node: loaded_site }).unwrap();
        assert!((r2.answer.response_ms - before.response_ms).abs() <= 1e-6);
        assert!((r2.answer.delay_ms - before.delay_ms).abs() <= 1e-6);
    }

    #[test]
    fn crash_zeroes_mass_on_quorums_using_the_node() {
        let mut s = session(6);
        let victim = s.cap_rows[0].0;
        let report = s.apply(&Delta::Crash { node: victim }).unwrap();
        for (i, counts) in s.node_counts.iter().enumerate() {
            if counts.binary_search_by_key(&victim, |&(j, _)| j).is_ok() {
                for row in &report.answer.strategy {
                    assert!(
                        row[i] <= 1e-9,
                        "quorum {i} touching crashed node {victim} still carries {}",
                        row[i]
                    );
                }
            }
        }
    }

    #[test]
    fn bad_deltas_are_rejected_without_advancing_state() {
        let mut s = session(4);
        let seq = s.status().seq;
        for d in [
            Delta::Slowdown {
                site: 99,
                factor: 2.0,
            },
            Delta::Slowdown {
                site: 0,
                factor: 0.0,
            },
            Delta::Slowdown {
                site: 0,
                factor: f64::NAN,
            },
            Delta::Demand {
                loc: 99,
                weight: 1.0,
            },
            Delta::Demand {
                loc: 0,
                weight: -1.0,
            },
            Delta::Crash { node: 99 },
            Delta::Restore { node: 99 },
        ] {
            assert!(matches!(s.apply(&d), Err(SessionError::BadDelta(_))));
        }
        // Crashing twice is a bad delta too (the first one sticks).
        s.apply(&Delta::Crash { node: 2 }).unwrap();
        assert!(matches!(
            s.apply(&Delta::Crash { node: 2 }),
            Err(SessionError::BadDelta(_))
        ));
        assert_eq!(s.status().seq, seq + 1);
    }

    #[test]
    fn zeroing_all_demand_is_rejected() {
        let mut s = session(4);
        let n = s.num_clients();
        for v in 0..n - 1 {
            s.apply(&Delta::Demand {
                loc: v,
                weight: 0.0,
            })
            .unwrap();
        }
        assert!(matches!(
            s.apply(&Delta::Demand {
                loc: n - 1,
                weight: 0.0
            }),
            Err(SessionError::BadDelta(_))
        ));
    }

    #[test]
    fn colgen_session_matches_resident_path_and_reports_pricing() {
        let mut full = session(6);
        let mut cg = session_with(6, Some(ColumnGeneration::default()));
        // The jittered optimum is unique, so both tuning paths land on
        // the same vertex and the same sweep winner.
        assert_eq!(full.answer().capacity, cg.answer().capacity);
        let rel = |a: f64, b: f64| (a - b).abs() / (1.0 + a.abs().max(b.abs()));
        assert!(rel(full.answer().delay_ms, cg.answer().delay_ms) <= 1e-9);
        assert!(rel(full.answer().response_ms, cg.answer().response_ms) <= 1e-9);
        let pricing = cg.status().colgen.expect("colgen session reports pricing");
        assert!(pricing.columns_in_master > 0);
        assert!(pricing.columns_in_master <= pricing.total_columns);
        assert!(pricing.master_resolves > 0);
        assert!(full.status().colgen.is_none());

        // Deltas re-tune through the same restricted master semantics.
        let d = Delta::Slowdown {
            site: 0,
            factor: 3.0,
        };
        let a = full.apply(&d).unwrap();
        let b = cg.apply(&d).unwrap();
        assert_eq!(a.answer.capacity, b.answer.capacity);
        assert!(rel(a.answer.delay_ms, b.answer.delay_ms) <= 1e-9);
        let after = cg.status().colgen.unwrap();
        assert!(after.master_resolves > pricing.master_resolves);

        // The colgen answer survives the warm-vs-cold cross-check.
        let check = cg.cold_check().unwrap();
        assert!(check.ok, "cross-check failed: {check:?}");
    }

    #[test]
    fn degraded_flag_pins_last_good_answer_until_restore() {
        let mut s = session(6);
        assert!(!s.degraded());
        // Crash every node any quorum uses; the last crash leaves no
        // live quorum and the tune goes infeasible.
        let victims: Vec<usize> = s.cap_rows.iter().map(|&(w, _)| w).collect();
        let before_seq = s.status().seq;
        let mut infeasible_at = None;
        for &w in &victims {
            match s.apply(&Delta::Crash { node: w }) {
                Ok(_) => assert!(!s.degraded()),
                Err(SessionError::Infeasible(_)) => {
                    infeasible_at = Some(w);
                    break;
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        let tipped = infeasible_at.expect("crashing every loaded node must go infeasible");
        assert!(s.degraded(), "infeasible tune must degrade the session");
        // The infeasible delta was still recorded and the last-good
        // answer is pinned.
        assert!(s.status().seq > before_seq);
        assert!(s
            .answer()
            .strategy
            .iter()
            .any(|r| r.iter().sum::<f64>() > 0.5));
        // Restoring the tipping node recovers and clears the flag.
        let report = s.apply(&Delta::Restore { node: tipped }).unwrap();
        assert!(!s.degraded());
        assert!(report.answer.delay_ms > 0.0);
    }

    #[test]
    fn restore_state_reproduces_a_live_session_bit_for_bit() {
        let mut live = session(6);
        live.apply(&Delta::Demand {
            loc: 1,
            weight: 4.0,
        })
        .unwrap();
        live.apply(&Delta::Slowdown {
            site: 3,
            factor: 2.5,
        })
        .unwrap();
        live.apply(&Delta::Crash { node: 5 }).unwrap();

        let mut restored = session(6);
        restored.restore_state(&live.persisted_state()).unwrap();
        assert_eq!(restored.seq(), live.seq());
        assert!(!restored.degraded());
        let (a, b) = (live.answer(), restored.answer());
        assert_eq!(a.capacity, b.capacity);
        let rel = |x: f64, y: f64| (x - y).abs() / (1.0 + x.abs().max(y.abs()));
        assert!(rel(a.delay_ms, b.delay_ms) <= 1e-9);
        assert!(rel(a.response_ms, b.response_ms) <= 1e-9);
        for (ra, rb) in a.strategy.iter().zip(&b.strategy) {
            for (&pa, &pb) in ra.iter().zip(rb) {
                assert!((pa - pb).abs() <= 1e-9);
            }
        }
        assert!(restored.cold_check().unwrap().ok);
    }

    #[test]
    fn restore_state_rejects_mismatched_dimensions() {
        let mut s = session(4);
        let mut state = s.persisted_state();
        state.raw_weights.push(1.0);
        assert!(matches!(
            s.restore_state(&state),
            Err(SessionError::Config(_))
        ));
        let mut state = s.persisted_state();
        state.crashed = vec![99];
        assert!(matches!(
            s.restore_state(&state),
            Err(SessionError::Config(_))
        ));
        let mut state = s.persisted_state();
        state.slowdown[0] = -1.0;
        assert!(matches!(
            s.restore_state(&state),
            Err(SessionError::Config(_))
        ));
    }

    #[test]
    fn warm_path_beats_cold_rebuild_on_pivots_over_a_burst() {
        let mut s = session(6);
        let mut warm_total = 0u64;
        let mut cold_total = 0u64;
        let deltas = [
            Delta::Demand {
                loc: 2,
                weight: 3.0,
            },
            Delta::Slowdown {
                site: 1,
                factor: 1.8,
            },
            Delta::Demand {
                loc: 7,
                weight: 0.2,
            },
            Delta::Slowdown {
                site: 1,
                factor: 1.0,
            },
            Delta::Demand {
                loc: 2,
                weight: 1.0,
            },
        ];
        for d in &deltas {
            let report = s.apply(d).unwrap();
            warm_total += report.answer.pivots;
            let check = s.cold_check().unwrap();
            assert!(check.ok);
            cold_total += check.cold_pivots;
        }
        assert!(
            warm_total < cold_total,
            "warm {warm_total} pivots not cheaper than cold {cold_total}"
        );
    }
}
