//! Criterion benches running every figure pipeline at smoke scale —
//! guarantees `cargo bench` exercises the exact code paths that regenerate
//! each of the paper's figures.

use criterion::{criterion_group, criterion_main, Criterion};

use qp_bench::{figures, Scale};

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures_smoke");
    group.sample_size(10);
    group.bench_function("fig3_1", |b| b.iter(|| figures::fig3_1(Scale::Smoke)));
    group.bench_function("fig3_2a", |b| b.iter(|| figures::fig3_2a(Scale::Smoke)));
    group.bench_function("fig3_2b", |b| b.iter(|| figures::fig3_2b(Scale::Smoke)));
    group.bench_function("fig6_3", |b| b.iter(|| figures::fig6_3(Scale::Smoke)));
    group.bench_function("fig6_4", |b| b.iter(|| figures::fig6_4(Scale::Smoke)));
    group.bench_function("fig6_5", |b| b.iter(|| figures::fig6_5(Scale::Smoke)));
    group.bench_function("fig7_6", |b| b.iter(|| figures::fig7_6(Scale::Smoke)));
    group.bench_function("fig7_7", |b| b.iter(|| figures::fig7_7(Scale::Smoke)));
    group.bench_function("fig7_8", |b| b.iter(|| figures::fig7_8(Scale::Smoke)));
    group.finish();

    // fig8_9 runs the full iterative pipeline (many LP solves); bench it
    // separately with the minimum sample count.
    let mut heavy = c.benchmark_group("figures_smoke_heavy");
    heavy.sample_size(10);
    heavy.bench_function("fig8_9", |b| b.iter(|| figures::fig8_9(Scale::Smoke)));
    heavy.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
