//! Criterion micro-benchmarks for the core computational kernels:
//! LP solves, placement construction and search, metric closure,
//! order-statistic evaluation, and DES event throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use qp_core::capacity::{capacity_sweep, CapacityProfile};
use qp_core::eval::EvalContext;
use qp_core::manyone::{element_weights, place_for_client, ManyToOneConfig};
use qp_core::strategy_lp::CapacitySweepSolver;
use qp_core::{combinatorics, one_to_one, response, strategy_lp, ResponseModel};
use qp_des::{EventQueue, ServiceStation, SimTime, TimeWheel};
use qp_lp::{BasisKind, Model, Sense, SolverOptions};
use qp_protocol::{
    simulate, simulate_with_engine, ClientPopulation, ProtocolConfig, QuorumChoice, SimEngine,
};
use qp_quorum::{MajorityKind, QuorumSystem, StrategyMatrix};
use qp_topology::{datasets, NodeId};

/// Deterministic pseudo-random feasible LP: box-bounded vars, b ≥ 0 so
/// x = 0 is feasible.
fn random_lp(vars: usize, rows: usize) -> Model {
    let mut m = Model::new(Sense::Minimize);
    let xs: Vec<_> = (0..vars)
        .map(|j| {
            let c = ((j * 37 % 19) as f64 - 9.0) / 3.0;
            m.add_var(&format!("x{j}"), 0.0, 5.0, c)
        })
        .collect();
    for i in 0..rows {
        let terms: Vec<_> = xs
            .iter()
            .enumerate()
            .filter(|(j, _)| (i * 7 + j * 13) % 5 == 0)
            .map(|(j, &x)| (x, 1.0 + ((i + j) % 3) as f64))
            .collect();
        m.add_le(&terms, 10.0 + (i % 7) as f64);
    }
    m
}

fn bench_lp_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp_solver");
    group.sample_size(10);
    // Three configurations over the same box-bounded random LPs:
    //   dense_random          — seed dense inverse, Dantzig, bounds as rows;
    //   factored_rows_dantzig — PR 3's sweep config (sparse LU only);
    //   factored_random       — the full hot path (`SolverOptions::factored()`:
    //                           sparse LU + devex + native bounds, so `m`
    //                           drops from rows+vars to rows).
    for &(vars, rows) in &[(50usize, 20usize), (200, 60), (800, 120)] {
        for (label, options) in [
            (
                "dense_random",
                SolverOptions {
                    basis: BasisKind::Dense,
                    ..SolverOptions::default()
                },
            ),
            (
                "factored_rows_dantzig",
                SolverOptions {
                    basis: BasisKind::Factored,
                    ..SolverOptions::default()
                },
            ),
            ("factored_random", SolverOptions::factored()),
        ] {
            group.bench_with_input(
                BenchmarkId::new(label, format!("{vars}v_{rows}r")),
                &(vars, rows),
                |b, &(vars, rows)| {
                    b.iter(|| {
                        random_lp(vars, rows)
                            .solve_with(&options)
                            .expect("feasible bounded LP")
                    });
                },
            );
        }
    }

    // Cold vs warm capacity sweep: the §7 shape — one constraint matrix,
    // ten capacity rhs values. Cold re-solves from scratch per point;
    // warm clones one solved base and dual-simplex-reoptimizes.
    let net = datasets::euclidean_random(24, 100.0, 42);
    let clients: Vec<NodeId> = net.nodes().collect();
    let sys = QuorumSystem::grid(3).unwrap();
    let placement = one_to_one::grid_shell_placement(&net, NodeId::new(0), 3).unwrap();
    let quorums = sys.enumerate(10_000).unwrap();
    let l_opt = sys.optimal_load().unwrap();
    let ctx = EvalContext::new(&net, &clients);
    let pq = ctx.place(&placement, &quorums);
    let cs = capacity_sweep(l_opt, 10);
    group.bench_function("sweep_cold_grid3_24sites", |b| {
        b.iter(|| {
            cs.iter()
                .map(|&cap| {
                    let caps = CapacityProfile::uniform(net.len(), cap);
                    strategy_lp::optimize_strategies_placed(&pq, &caps)
                        .map(|s| s.num_clients())
                        .unwrap_or(0)
                })
                .sum::<usize>()
        });
    });
    group.bench_function("sweep_warm_grid3_24sites", |b| {
        b.iter(|| {
            let solver = CapacitySweepSolver::new(&pq).expect("feasible at capacity 1");
            cs.iter()
                .map(|&cap| {
                    solver
                        .solve_uniform(cap)
                        .map(|o| o.strategy.num_clients())
                        .unwrap_or(0)
                })
                .sum::<usize>()
        });
    });

    // The ISSUE-4 motivating workload: a daxlist-161 sweep prices a
    // 16,100-column strategy LP. Same warm-sweep shape as above at paper
    // scale, under PR 3's solver configuration (sparse LU + Dantzig +
    // bounds-as-rows) vs the full hot path (devex partial pricing, native
    // bounds, crash start, dual devex re-solves).
    let dax = datasets::daxlist_161();
    let dax_clients: Vec<NodeId> = dax.nodes().collect();
    let dax_sys = QuorumSystem::grid(7).unwrap();
    let dax_placement = one_to_one::grid_shell_placement(&dax, NodeId::new(0), 7).unwrap();
    let dax_quorums = dax_sys.enumerate(100).unwrap();
    let dax_l_opt = dax_sys.optimal_load().unwrap();
    let dax_ctx = EvalContext::new(&dax, &dax_clients);
    let dax_pq = dax_ctx.place(&dax_placement, &dax_quorums);
    let dax_cs = capacity_sweep(dax_l_opt, 10);
    for (label, options) in [
        (
            "sweep_warm_daxlist161_pr3config",
            SolverOptions {
                basis: BasisKind::Factored,
                ..SolverOptions::default()
            },
        ),
        ("sweep_warm_daxlist161", SolverOptions::factored()),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let solver = CapacitySweepSolver::new_with_options(&dax_pq, options.clone())
                    .expect("feasible at capacity 1");
                dax_cs
                    .iter()
                    .map(|&cap| {
                        solver
                            .solve_uniform(cap)
                            .map(|o| o.strategy.num_clients())
                            .unwrap_or(0)
                    })
                    .sum::<usize>()
            });
        });
    }

    // Column generation vs full enumeration, same daxlist-161 geometry —
    // the PR 7 scale-path A/B. Both kernels solve the identical strategy
    // LP (objectives agree to 1e-9; see tests/scenario_regression.rs):
    // `full` builds and cold-solves all 16,100 columns, `colgen` runs
    // the restricted master + pricing oracle and materializes only the
    // columns that price favorably. The sweep pair replays the ten-point
    // §7 sweep, where the colgen master keeps its generated columns
    // across capacity points. The full-enumeration configuration stays
    // in-bench permanently for A/B against future pricing work.
    let dax_caps = CapacityProfile::uniform(dax.len(), 0.8);
    group.bench_function(
        BenchmarkId::new("colgen_vs_full", "full_daxlist161_c08"),
        |b| {
            b.iter(|| {
                strategy_lp::optimize_strategies_outcome_with(&dax_pq, &dax_caps, None)
                    .expect("feasible at 0.8")
                    .delay_ms
            });
        },
    );
    let cg_cfg = strategy_lp::ColumnGeneration::default();
    group.bench_function(
        BenchmarkId::new("colgen_vs_full", "colgen_daxlist161_c08"),
        |b| {
            b.iter(|| {
                strategy_lp::optimize_strategies_outcome_with(&dax_pq, &dax_caps, Some(&cg_cfg))
                    .expect("feasible at 0.8")
                    .delay_ms
            });
        },
    );
    let dax_model = ResponseModel::from_demand(0.007, 16_000.0);
    group.bench_function(
        BenchmarkId::new("colgen_vs_full", "sweep_full_daxlist161"),
        |b| {
            b.iter(|| {
                strategy_lp::tune_uniform_capacity_placed_with(
                    &dax_pq, dax_l_opt, 10, dax_model, None,
                )
                .expect("feasible sweep")
                .best_point()
                .0
            });
        },
    );
    group.bench_function(
        BenchmarkId::new("colgen_vs_full", "sweep_colgen_daxlist161"),
        |b| {
            b.iter(|| {
                strategy_lp::tune_uniform_capacity_placed_with(
                    &dax_pq,
                    dax_l_opt,
                    10,
                    dax_model,
                    Some(&cg_cfg),
                )
                .expect("feasible sweep")
                .best_point()
                .0
            });
        },
    );
    group.finish();
}

fn bench_strategy_lp(c: &mut Criterion) {
    let net = datasets::planetlab_50();
    let clients: Vec<NodeId> = net.nodes().collect();
    let mut group = c.benchmark_group("strategy_lp");
    group.sample_size(10);
    for &k in &[3usize, 5] {
        let sys = QuorumSystem::grid(k).unwrap();
        let placement = one_to_one::best_placement(&net, &sys).unwrap();
        let quorums = sys.enumerate(100_000).unwrap();
        let caps = CapacityProfile::uniform(net.len(), 0.8);
        group.bench_with_input(
            BenchmarkId::new("grid_planetlab50", format!("k{k}")),
            &k,
            |b, _| {
                b.iter(|| {
                    strategy_lp::optimize_strategies(&net, &clients, &placement, &quorums, &caps)
                        .expect("feasible at 0.8")
                });
            },
        );
    }
    group.finish();
}

fn bench_manyone_lp(c: &mut Criterion) {
    let net = datasets::planetlab_50();
    let sys = QuorumSystem::grid(4).unwrap();
    let quorums = sys.enumerate(100_000).unwrap();
    let probs = vec![1.0 / quorums.len() as f64; quorums.len()];
    let weights = element_weights(&probs, &quorums, sys.universe_size());
    let caps = CapacityProfile::uniform(net.len(), 0.9);
    let mut group = c.benchmark_group("manyone");
    group.sample_size(10);
    group.bench_function("place_for_client_grid4", |b| {
        b.iter(|| {
            place_for_client(
                &net,
                NodeId::new(7),
                &weights,
                &caps,
                &ManyToOneConfig::default(),
            )
            .expect("feasible")
        });
    });
    group.finish();
}

fn bench_placement_search(c: &mut Criterion) {
    let net = datasets::planetlab_50();
    let mut group = c.benchmark_group("placement_search");
    group.sample_size(20);
    let grid = QuorumSystem::grid(5).unwrap();
    group.bench_function("best_grid5_closest", |b| {
        b.iter(|| one_to_one::best_placement(&net, &grid).unwrap());
    });
    let maj = QuorumSystem::majority(MajorityKind::FourFifths, 4).unwrap();
    group.bench_function("best_majority_t4_balanced", |b| {
        b.iter(|| {
            one_to_one::best_placement_by(&net, &maj, one_to_one::SelectionObjective::BalancedDelay)
                .unwrap()
        });
    });
    group.finish();
}

fn bench_metric_closure(c: &mut Criterion) {
    let mut group = c.benchmark_group("metric_closure");
    for &n in &[50usize, 161] {
        let net = datasets::uniform_random(n, 5.0, 300.0, 11);
        let m = net.distances().clone();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| m.metric_closure());
        });
    }
    group.finish();
}

fn bench_expected_max(c: &mut Criterion) {
    let costs: Vec<f64> = (0..161).map(|i| ((i * 31) % 97) as f64).collect();
    let mut group = c.benchmark_group("combinatorics");
    group.sample_size(30);
    group.bench_function("expected_max_uniform_subset_n161_q81", |b| {
        b.iter(|| combinatorics::expected_max_uniform_subset(&costs, 81));
    });
    group.finish();
}

fn bench_evaluation(c: &mut Criterion) {
    let net = datasets::daxlist_161();
    let clients: Vec<NodeId> = net.nodes().collect();
    let sys = QuorumSystem::grid(7).unwrap();
    let placement = one_to_one::grid_shell_placement(&net, NodeId::new(0), 7).unwrap();
    let mut group = c.benchmark_group("evaluation");
    group.sample_size(30);
    group.bench_function("evaluate_closest_grid7_daxlist161", |b| {
        b.iter(|| {
            response::evaluate_closest(
                &net,
                &clients,
                &sys,
                &placement,
                ResponseModel::from_demand(0.007, 16000.0),
            )
            .unwrap()
        });
    });

    // Cached vs uncached Eq. (4.2) evaluation: the uncached path rebuilds
    // the (clients × quorums) delay matrix and host geometry per call;
    // the cached path binds them once via PlacedQuorums and reuses them —
    // the exact shape of the §7 capacity sweeps.
    let quorums = sys.enumerate(100_000).unwrap();
    let strategy = StrategyMatrix::uniform(clients.len(), quorums.len());
    let model = ResponseModel::from_demand(0.007, 16000.0);
    group.bench_function("evaluate_matrix_uncached_grid7_daxlist161", |b| {
        b.iter(|| {
            response::evaluate_matrix(&net, &clients, &placement, &quorums, &strategy, model)
                .unwrap()
        });
    });
    let ctx = EvalContext::new(&net, &clients);
    let pq = ctx.place(&placement, &quorums);
    group.bench_function("evaluate_matrix_cached_grid7_daxlist161", |b| {
        b.iter(|| response::evaluate_matrix_placed(&pq, &strategy, model).unwrap());
    });
    let dedup = model.deduplicated();
    group.bench_function("evaluate_matrix_uncached_dedup_grid7", |b| {
        b.iter(|| {
            response::evaluate_matrix(&net, &clients, &placement, &quorums, &strategy, dedup)
                .unwrap()
        });
    });
    group.bench_function("evaluate_matrix_cached_dedup_grid7", |b| {
        b.iter(|| response::evaluate_matrix_placed(&pq, &strategy, dedup).unwrap());
    });
    group.finish();
}

fn bench_sweep_parallel(c: &mut Criterion) {
    // The whole fig7_6 smoke pipeline (placement search + LP sweep over
    // the (universe × capacity) grid), serial vs parallel. Output is
    // bit-identical across thread counts; only wall-clock differs.
    // Restores the default configuration afterwards.
    let mut group = c.benchmark_group("sweep");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("fig7_6_smoke", format!("t{threads}")),
            &threads,
            |b, &threads| {
                qp_par::configure_threads(threads);
                b.iter(|| qp_bench::figures::fig7_6(qp_bench::Scale::Smoke));
            },
        );
    }
    qp_par::configure_threads(
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    );
    group.finish();
}

fn bench_des(c: &mut Criterion) {
    let mut group = c.benchmark_group("des");
    group.sample_size(10);
    group.bench_function("event_queue_100k_push_pop", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..100_000u64 {
                // Scatter times deterministically.
                let t = ((i.wrapping_mul(2654435761)) % 1_000_000) as f64 / 100.0;
                q.push(SimTime::from_ms(t), i);
            }
            let mut count = 0u64;
            while q.pop().is_some() {
                count += 1;
            }
            count
        });
    });
    group.bench_function("service_station_1m_submits", |b| {
        b.iter(|| {
            let mut s = ServiceStation::new();
            let mut t = SimTime::ZERO;
            for _ in 0..1_000_000 {
                t = t + 0.5;
                s.submit(t, 1.0);
            }
            s.served()
        });
    });
    let net = datasets::planetlab_50();
    let sys = QuorumSystem::majority(MajorityKind::FourFifths, 2).unwrap();
    let placement = one_to_one::best_placement(&net, &sys).unwrap();
    let clients = ClientPopulation::representative(&net, &sys, &placement, 10, 5);
    group.bench_function("protocol_sim_50clients_qu_t2", |b| {
        b.iter(|| {
            simulate(
                &net,
                &sys,
                &placement,
                &clients,
                QuorumChoice::Balanced,
                &ProtocolConfig {
                    warmup_requests: 10,
                    measured_requests: 50,
                    ..ProtocolConfig::default()
                },
            )
            .unwrap()
        });
    });
    group.finish();
}

/// The ISSUE-8 A/B pairs. `queue` races the binary heap against the
/// hierarchical time wheel on the same 100k-event scatter (pop order is
/// identical — see the qp-des schedule-equivalence proptest), plus the
/// wheel's batch-push entry point. `engine` races the exact per-client
/// DES against the aggregated fluid engine on the same mid-size
/// workload: the aggregated cost scales with locations × quorums, not
/// clients, so the gap widens with population.
fn bench_des_ab(c: &mut Criterion) {
    let mut group = c.benchmark_group("des_ab");
    group.sample_size(10);

    let scatter = |i: u64| ((i.wrapping_mul(2654435761)) % 1_000_000) as f64 / 100.0;
    group.bench_function(BenchmarkId::new("queue_100k_scatter", "heap"), |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..100_000u64 {
                q.push(SimTime::from_ms(scatter(i)), i);
            }
            let mut count = 0u64;
            while q.pop().is_some() {
                count += 1;
            }
            count
        });
    });
    group.bench_function(BenchmarkId::new("queue_100k_scatter", "wheel"), |b| {
        b.iter(|| {
            let mut q = TimeWheel::new(1.0);
            for i in 0..100_000u64 {
                q.push(SimTime::from_ms(scatter(i)), i);
            }
            let mut count = 0u64;
            while q.pop().is_some() {
                count += 1;
            }
            count
        });
    });
    group.bench_function(BenchmarkId::new("queue_100k_scatter", "wheel_batch"), |b| {
        b.iter(|| {
            let mut q = TimeWheel::new(1.0);
            q.push_batch((0..100_000u64).map(|i| (SimTime::from_ms(scatter(i)), i)));
            let mut count = 0u64;
            while q.pop().is_some() {
                count += 1;
            }
            count
        });
    });

    // Exact vs aggregated on the same 2,000-client workload. The exact
    // engine walks every client's closed loop; the aggregated engine
    // merges each location into one per-quorum flow.
    let net = datasets::planetlab_50();
    let sys = QuorumSystem::majority(MajorityKind::FourFifths, 2).unwrap();
    let placement = one_to_one::best_placement(&net, &sys).unwrap();
    let clients = ClientPopulation::representative(&net, &sys, &placement, 10, 200);
    let cfg = ProtocolConfig {
        warmup_requests: 4,
        measured_requests: 16,
        service_time_ms: 0.05,
        ..ProtocolConfig::default()
    };
    for (label, engine) in [
        ("exact", SimEngine::Exact),
        ("aggregated", SimEngine::Aggregated),
    ] {
        group.bench_function(BenchmarkId::new("protocol_2k_clients", label), |b| {
            b.iter(|| {
                simulate_with_engine(
                    &net,
                    &sys,
                    &placement,
                    &clients,
                    QuorumChoice::Balanced,
                    &cfg,
                    engine,
                )
                .unwrap()
            });
        });
    }
    group.finish();
}

/// ISSUE-10's overhead contract: the recorder hooks must be free when
/// no recorder is installed and cheap when one is. Each kernel runs
/// A/B — `noop` (nothing installed, the `enabled()` fast path) against
/// `in_memory` (an [`InMemoryRecorder`] collecting every counter,
/// histogram sample, and event). The kernels are the two hottest
/// instrumented paths: a full 800-variable LP solve (one flush per
/// solve) and an exact-engine protocol simulation (one flush per run).
/// The recorder is process-global, so install/uninstall brackets each
/// measured configuration — criterion interleaves nothing in between.
fn bench_obs_overhead(c: &mut Criterion) {
    use std::sync::Arc;

    let mut group = c.benchmark_group("obs_overhead");
    group.sample_size(10);

    let net = datasets::planetlab_50();
    let sys = QuorumSystem::majority(MajorityKind::FourFifths, 2).unwrap();
    let placement = one_to_one::best_placement(&net, &sys).unwrap();
    let clients = ClientPopulation::representative(&net, &sys, &placement, 10, 5);
    let cfg = ProtocolConfig {
        warmup_requests: 10,
        measured_requests: 50,
        ..ProtocolConfig::default()
    };

    for recorder in ["noop", "in_memory"] {
        if recorder == "in_memory" {
            qp_obs::install(Arc::new(qp_obs::InMemoryRecorder::new()));
        } else {
            qp_obs::uninstall();
        }
        group.bench_function(BenchmarkId::new("lp_800v_120r", recorder), |b| {
            b.iter(|| {
                random_lp(800, 120)
                    .solve_with(&SolverOptions::factored())
                    .unwrap()
            });
        });
        group.bench_function(BenchmarkId::new("protocol_sim_50clients", recorder), |b| {
            b.iter(|| {
                simulate(
                    &net,
                    &sys,
                    &placement,
                    &clients,
                    QuorumChoice::Balanced,
                    &cfg,
                )
                .unwrap()
            });
        });
        qp_obs::uninstall();
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_lp_solver,
    bench_strategy_lp,
    bench_manyone_lp,
    bench_placement_search,
    bench_metric_closure,
    bench_expected_max,
    bench_evaluation,
    bench_sweep_parallel,
    bench_des,
    bench_des_ab,
    bench_obs_overhead,
);
criterion_main!(benches);
