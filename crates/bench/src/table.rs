//! Tabular figure output.

use std::fmt;

/// A figure's data: named columns, numeric rows, provenance header.
///
/// Cells are `f64`; `NaN` renders as a blank (used when a series has no
/// point at that x, e.g. an infeasible capacity).
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Figure identifier ("fig6_3").
    pub id: String,
    /// Human-readable title including the paper figure number.
    pub title: String,
    /// Column names; the first column is the x-axis.
    pub columns: Vec<String>,
    /// Data rows; each row has `columns.len()` entries.
    pub rows: Vec<Vec<f64>>,
}

impl Table {
    /// Creates an empty table.
    ///
    /// # Panics
    ///
    /// Panics if `columns` is empty.
    pub fn new(id: &str, title: &str, columns: Vec<String>) -> Self {
        assert!(!columns.is_empty(), "a table needs at least one column");
        Table {
            id: id.to_string(),
            title: title.to_string(),
            columns,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != self.columns.len()`.
    pub fn push_row(&mut self, row: Vec<f64>) {
        assert_eq!(row.len(), self.columns.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// The table as CSV (header + rows; NaN cells are empty).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.columns.join(","));
        out.push('\n');
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .map(|&x| {
                    if x.is_nan() {
                        String::new()
                    } else {
                        format!("{x:.4}")
                    }
                })
                .collect();
            out.push_str(&cells.join(","));
            out.push('\n');
        }
        out
    }

    /// The values of one named column.
    ///
    /// # Panics
    ///
    /// Panics if no column has that name.
    pub fn column(&self, name: &str) -> Vec<f64> {
        let idx = self
            .columns
            .iter()
            .position(|c| c == name)
            .unwrap_or_else(|| panic!("no column named {name}"));
        self.rows.iter().map(|r| r[idx]).collect()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# {} — {}", self.id, self.title)?;
        let widths: Vec<usize> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let data_w = self
                    .rows
                    .iter()
                    .map(|r| format_cell(r[i]).len())
                    .max()
                    .unwrap_or(0);
                c.len().max(data_w)
            })
            .collect();
        for (c, w) in self.columns.iter().zip(&widths) {
            write!(f, "{c:>w$}  ", w = w)?;
        }
        writeln!(f)?;
        for row in &self.rows {
            for (x, w) in row.iter().zip(&widths) {
                write!(f, "{:>w$}  ", format_cell(*x), w = w)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

fn format_cell(x: f64) -> String {
    if x.is_nan() {
        "-".to_string()
    } else if x == x.trunc() && x.abs() < 1e9 {
        format!("{}", x as i64)
    } else {
        format!("{x:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_roundtrip_shape() {
        let mut t = Table::new("t", "test", vec!["x".into(), "y".into()]);
        t.push_row(vec![1.0, 2.5]);
        t.push_row(vec![2.0, f64::NAN]);
        let csv = t.to_csv();
        assert_eq!(csv, "x,y\n1.0000,2.5000\n2.0000,\n");
    }

    #[test]
    fn display_contains_header_and_values() {
        let mut t = Table::new("f", "Figure", vec!["x".into(), "value".into()]);
        t.push_row(vec![10.0, 3.25]);
        let s = t.to_string();
        assert!(s.contains("Figure"));
        assert!(s.contains("3.25"));
        assert!(s.contains("10"));
    }

    #[test]
    fn column_lookup() {
        let mut t = Table::new("f", "c", vec!["x".into(), "y".into()]);
        t.push_row(vec![1.0, 4.0]);
        t.push_row(vec![2.0, 5.0]);
        assert_eq!(t.column("y"), vec![4.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new("f", "c", vec!["x".into()]);
        t.push_row(vec![1.0, 2.0]);
    }
}
