//! Regenerates the paper's Figure 3_2a data series.
//!
//! Usage: `cargo run --release -p qp-bench --bin fig3_2a [--csv] [--smoke]`

fn main() {
    qp_bench::run_figure(qp_bench::figures::fig3_2a);
}
