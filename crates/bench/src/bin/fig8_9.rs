//! Regenerates the paper's Figure 8_9 data series.
//!
//! Usage: `cargo run --release -p qp-bench --bin fig8_9 [--csv] [--smoke]`

fn main() {
    qp_bench::run_figure(qp_bench::figures::fig8_9);
}
