//! Regenerates the paper's Figure 3_1 data series.
//!
//! Usage: `cargo run --release -p qp-bench --bin fig3_1 [--csv] [--smoke]`

fn main() {
    qp_bench::run_figure(qp_bench::figures::fig3_1);
}
