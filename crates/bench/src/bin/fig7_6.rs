//! Regenerates the paper's Figure 7_6 data series.
//!
//! Usage: `cargo run --release -p qp-bench --bin fig7_6 [--csv] [--smoke]`

fn main() {
    qp_bench::run_figure(qp_bench::figures::fig7_6);
}
