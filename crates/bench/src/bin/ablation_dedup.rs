//! Ablation for the §8 future-work variant: deduplicated execution of
//! co-located universe elements.
//!
//! The paper closes with: "a variation of our model, in which a server
//! hosting multiple universe elements would execute a request only once
//! for all elements it hosts, can clearly improve the performance. We plan
//! to analyze the benefits of such an approach in future work." This
//! binary runs that analysis: for the 5×5 Grid on Planetlab-50, it builds
//! increasingly co-located placements (one-to-one → iterative many-to-one
//! → 3-node → median/singleton) and compares response time with and
//! without deduplicated execution, in both the analytic model and the
//! discrete-event simulation.
//!
//! Usage: `cargo run --release -p qp-bench --bin ablation_dedup [--csv]`

use qp_bench::Table;
use qp_core::capacity::CapacityProfile;
use qp_core::manyone::ManyToOneConfig;
use qp_core::response::evaluate_balanced;
use qp_core::{iterative, one_to_one, singleton, Placement, ResponseModel};
use qp_protocol::{simulate, ClientPopulation, ProtocolConfig, QuorumChoice};
use qp_quorum::QuorumSystem;
use qp_topology::{datasets, NodeId};

fn main() {
    let csv = std::env::args().any(|a| a == "--csv");
    let net = datasets::planetlab_50();
    let clients: Vec<NodeId> = net.nodes().collect();
    let sys = QuorumSystem::grid(5).expect("k ≥ 1");
    let quorums = sys.enumerate(100_000).expect("25 quorums");
    let model = ResponseModel::from_demand(0.007, 4000.0);

    // Candidate placements, least to most co-located.
    let one_one = one_to_one::best_placement(&net, &sys).expect("fits");
    let iter_caps = CapacityProfile::uniform(net.len(), 1.0);
    let m2o = iterative::optimize(
        &net,
        &clients,
        &quorums,
        &iter_caps,
        ResponseModel::network_delay_only(),
        2,
        &ManyToOneConfig {
            capacity_slack: 2.0,
            ..ManyToOneConfig::default()
        },
    )
    .expect("feasible at capacity 1.0")
    .placement;
    let ball = net.ball(net.median(), 3);
    let three_node = Placement::new(
        (0..sys.universe_size()).map(|u| ball[u % 3]).collect(),
        net.len(),
    )
    .expect("hosts in range");
    let median = singleton::median_placement(&net, sys.universe_size()).expect("ok");

    let mut table = Table::new(
        "ablation_dedup",
        "§8 ablation — deduplicated execution vs per-element execution (5×5 Grid, Planetlab-50, demand 4000, balanced strategy)",
        vec![
            "support_nodes".into(),
            "model_resp_ms".into(),
            "model_resp_dedup_ms".into(),
            "des_resp_ms".into(),
            "des_resp_dedup_ms".into(),
        ],
    );

    let pop = ClientPopulation::representative(&net, &sys, &one_one, 10, 4);
    for placement in [&one_one, &m2o, &three_node, &median] {
        let plain = evaluate_balanced(&net, &clients, &sys, placement, model).expect("ok");
        let dedup =
            evaluate_balanced(&net, &clients, &sys, placement, model.deduplicated()).expect("ok");
        let cfg = ProtocolConfig {
            warmup_requests: 20,
            measured_requests: 120,
            ..ProtocolConfig::default()
        };
        let des_plain =
            simulate(&net, &sys, placement, &pop, QuorumChoice::Balanced, &cfg).expect("ok");
        let des_dedup = simulate(
            &net,
            &sys,
            placement,
            &pop,
            QuorumChoice::Balanced,
            &ProtocolConfig {
                dedup_colocated: true,
                ..cfg
            },
        )
        .expect("ok");
        table.push_row(vec![
            placement.support_set().len() as f64,
            plain.avg_response_ms,
            dedup.avg_response_ms,
            des_plain.avg_response_ms,
            des_dedup.avg_response_ms,
        ]);
    }

    if csv {
        print!("{}", table.to_csv());
    } else {
        print!("{table}");
        println!(
            "\nReading: dedup matches per-element execution for one-to-one\n\
             placements and wins increasingly as elements co-locate — the\n\
             paper's §8 conjecture, quantified."
        );
    }
}
