//! Regenerates the paper's Figure 6_3 data series.
//!
//! Usage: `cargo run --release -p qp-bench --bin fig6_3 [--csv] [--smoke]`

fn main() {
    qp_bench::run_figure(qp_bench::figures::fig6_3);
}
