//! Regenerates the paper's Figure 7_8 data series.
//!
//! Usage: `cargo run --release -p qp-bench --bin fig7_8 [--csv] [--smoke]`

fn main() {
    qp_bench::run_figure(qp_bench::figures::fig7_8);
}
