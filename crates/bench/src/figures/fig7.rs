//! §7 capacity-tuning figures (7.6, 7.7, 7.8): LP-optimized strategies
//! under uniform and non-uniform node capacities.
//!
//! Each figure is a (universe size × capacity) grid of LP re-solves that
//! share one constraint matrix per `k`. The pipelines run in three
//! parallel stages on the global [`ParPool`]: the per-`k` setups
//! (placement search + quorum enumeration), the per-`k` warm-start base
//! solves ([`CapacitySweepSolver`], one cold LP each), then every grid
//! cell at once — each cell clones the solved base, rewrites only its
//! capacity right-hand sides, and dual-simplex-reoptimizes, reusing the
//! per-`k` [`PlacedQuorums`] geometry cache for scoring. Rows are emitted
//! in the same (k, capacity) order as the original serial loops, and
//! every cell is a pure function of its inputs, so tables are bit-for-bit
//! identical for any thread count.

use qp_core::capacity::CapacityProfile;
use qp_core::eval::{EvalContext, PlacedQuorums};
use qp_core::one_to_one;
use qp_core::response::evaluate_matrix_placed;
use qp_core::strategy_lp::CapacitySweepSolver;
use qp_core::{Placement, ResponseModel};
use qp_par::ParPool;
use qp_quorum::{Quorum, QuorumSystem};
use qp_topology::{datasets, Network, NodeId};

use crate::figures::fig6::OP_SRV_TIME_MS;
use crate::{Scale, Table};

const DEMAND: f64 = 16000.0;

fn setup(scale: Scale) -> (Network, Vec<NodeId>, Vec<usize>, usize) {
    let net = datasets::planetlab_50();
    let clients: Vec<NodeId> = net.nodes().collect();
    let (ks, steps) = match scale {
        Scale::Full => ((2..=7).collect::<Vec<_>>(), 10),
        Scale::Smoke => (vec![2, 3], 4),
    };
    (net, clients, ks, steps)
}

/// Per-`k` sweep inputs: system, best placement, enumerated quorums,
/// and the capacity grid.
struct GridSetup {
    k: usize,
    l_opt: f64,
    placement: Placement,
    quorums: Vec<Quorum>,
    sweep: Vec<f64>,
}

/// Stage 1: build every per-`k` setup in parallel (the placement
/// search dominates).
fn grid_setups(ctx: &EvalContext<'_>, ks: &[usize], steps: usize) -> Vec<GridSetup> {
    ParPool::global().run(ks.len(), |i| {
        let k = ks[i];
        let sys = QuorumSystem::grid(k).expect("k ≥ 1");
        let l_opt = sys.optimal_load().expect("grid");
        let placement = one_to_one::best_placement_ctx(ctx, &sys).expect("fits");
        let quorums = sys.enumerate(100_000).expect("k² quorums");
        let sweep = qp_core::capacity::capacity_sweep(l_opt, steps);
        GridSetup {
            k,
            l_opt,
            placement,
            quorums,
            sweep,
        }
    })
}

/// The shared parallel-grid harness of Figures 7.6–7.8: bind each
/// setup's geometry once, build one warm-start [`CapacitySweepSolver`]
/// per setup (in parallel — one cold LP each), flatten the
/// (setup × capacity) grid into cells in row-emission order, evaluate
/// every cell on the global pool, and return the rows in that same
/// order. A setup whose LP is infeasible even at capacity 1 hands the
/// cell `None` (all its sweep points are infeasible too).
fn run_grid(
    ctx: &EvalContext<'_>,
    setups: &[GridSetup],
    cell: impl Fn(&PlacedQuorums<'_>, Option<&CapacitySweepSolver>, &GridSetup, f64) -> Vec<f64> + Sync,
) -> Vec<Vec<f64>> {
    let pqs: Vec<PlacedQuorums<'_>> = setups
        .iter()
        .map(|s| ctx.place(&s.placement, &s.quorums))
        .collect();
    let solvers: Vec<Option<CapacitySweepSolver>> =
        ParPool::global().run(pqs.len(), |i| CapacitySweepSolver::new(&pqs[i]).ok());
    let cells: Vec<(usize, usize)> = setups
        .iter()
        .enumerate()
        .flat_map(|(si, s)| (0..s.sweep.len()).map(move |ci| (si, ci)))
        .collect();
    ParPool::global().run(cells.len(), |j| {
        let (si, ci) = cells[j];
        let s = &setups[si];
        cell(&pqs[si], solvers[si].as_ref(), s, s.sweep[ci])
    })
}

/// One warm uniform-capacity cell: LP at capacity `c` plus response-model
/// scoring; `None` where the LP is infeasible (or numerically failed —
/// a figure renders that cell as NaN rather than aborting the run).
fn uniform_cell(
    pq: &PlacedQuorums<'_>,
    solver: Option<&CapacitySweepSolver>,
    c: f64,
    model: ResponseModel,
) -> Option<(f64, f64)> {
    let outcome = solver?.solve_uniform(c).ok()?;
    let eval = evaluate_matrix_placed(pq, &outcome.strategy, model).expect("sizes agree");
    Some((eval.avg_network_delay_ms, eval.avg_response_ms))
}

/// Figure 7.6: the (universe size × uniform node capacity) surface of
/// network delay and response time for LP-tuned strategies, Grid on
/// Planetlab-50, demand 16000.
pub fn fig7_6(scale: Scale) -> Table {
    let (net, clients, ks, steps) = setup(scale);
    let ctx = EvalContext::new(&net, &clients);
    let model = ResponseModel::from_demand(OP_SRV_TIME_MS, DEMAND);
    let mut table = Table::new(
        "fig7_6",
        "Fig 7.6 — LP-tuned strategies: delay & response vs (universe, uniform capacity) (Grid, Planetlab-50, demand 16000)",
        vec![
            "universe_n".into(),
            "capacity".into(),
            "network_delay_ms".into(),
            "response_time_ms".into(),
        ],
    );
    let setups = grid_setups(&ctx, &ks, steps);
    let rows = run_grid(&ctx, &setups, |pq, solver, s, c| {
        match uniform_cell(pq, solver, c, model) {
            Some((delay, resp)) => vec![(s.k * s.k) as f64, c, delay, resp],
            None => vec![(s.k * s.k) as f64, c, f64::NAN, f64::NAN],
        }
    });
    for row in rows {
        table.push_row(row);
    }
    table
}

/// Figure 7.7: response time under uniform (`cap = cᵢ` everywhere) vs
/// non-uniform (`[β, γ] = [L_opt, cᵢ]` inverse-distance heuristic)
/// capacities over the same surface.
pub fn fig7_7(scale: Scale) -> Table {
    let (net, clients, ks, steps) = setup(scale);
    let ctx = EvalContext::new(&net, &clients);
    let model = ResponseModel::from_demand(OP_SRV_TIME_MS, DEMAND);
    let mut table = Table::new(
        "fig7_7",
        "Fig 7.7 — Uniform vs non-uniform node capacities (Grid, Planetlab-50, demand 16000)",
        vec![
            "universe_n".into(),
            "capacity".into(),
            "network_delay_ms".into(),
            "response_uniform_ms".into(),
            "response_nonuniform_ms".into(),
        ],
    );
    let setups = grid_setups(&ctx, &ks, steps);
    let rows = run_grid(&ctx, &setups, |pq, solver, s, c| {
        let (delay, resp_u, resp_n) = uniform_vs_nonuniform(pq, solver, s, c, model);
        vec![(s.k * s.k) as f64, c, delay, resp_u, resp_n]
    });
    for row in rows {
        table.push_row(row);
    }
    table
}

/// One Figure 7.7/7.8 cell: `(network delay, uniform response,
/// non-uniform response)` at capacity `c`, NaN where the LP is
/// infeasible. Both variants re-solve warm from the same shared base, so
/// the comparison is between capacity *assignments*, not between solver
/// vertex choices.
fn uniform_vs_nonuniform(
    pq: &PlacedQuorums<'_>,
    solver: Option<&CapacitySweepSolver>,
    s: &GridSetup,
    c: f64,
    model: ResponseModel,
) -> (f64, f64, f64) {
    let (delay, resp_u) = uniform_cell(pq, solver, c, model).unwrap_or((f64::NAN, f64::NAN));
    let net = pq.ctx().net();
    let caps = CapacityProfile::inverse_distance(net, &s.placement.support_set(), s.l_opt, c)
        .expect("support is nonempty");
    let resp_n = match solver.and_then(|sv| sv.solve_profile(&caps).ok()) {
        Some(o) => {
            evaluate_matrix_placed(pq, &o.strategy, model)
                .expect("sizes agree")
                .avg_response_ms
        }
        None => f64::NAN,
    };
    (delay, resp_u, resp_n)
}

/// Figure 7.8: the `n = 49` (7×7) slice of Figure 7.7 — response vs
/// capacity for uniform and non-uniform capacities.
pub fn fig7_8(scale: Scale) -> Table {
    let net = datasets::planetlab_50();
    let clients: Vec<NodeId> = net.nodes().collect();
    let ctx = EvalContext::new(&net, &clients);
    let (k, steps) = match scale {
        Scale::Full => (7, 10),
        Scale::Smoke => (3, 4),
    };
    let model = ResponseModel::from_demand(OP_SRV_TIME_MS, DEMAND);
    let setups = grid_setups(&ctx, &[k], steps);
    let mut table = Table::new(
        "fig7_8",
        "Fig 7.8 — 7×7 Grid on Planetlab-50: response vs capacity, uniform vs non-uniform (demand 16000)",
        vec![
            "capacity".into(),
            "network_delay_ms".into(),
            "response_uniform_ms".into(),
            "response_nonuniform_ms".into(),
        ],
    );
    let rows = run_grid(&ctx, &setups, |pq, solver, s, c| {
        let (delay, resp_u, resp_n) = uniform_vs_nonuniform(pq, solver, s, c, model);
        vec![c, delay, resp_u, resp_n]
    });
    for row in rows {
        table.push_row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_6_delay_decreases_with_capacity() {
        let t = fig7_6(Scale::Smoke);
        // Within one universe size, higher capacity lets clients use closer
        // quorums: network delay must be non-increasing in capacity.
        let mut by_universe: std::collections::BTreeMap<i64, Vec<(f64, f64)>> = Default::default();
        for row in &t.rows {
            if !row[2].is_nan() {
                by_universe
                    .entry(row[0] as i64)
                    .or_default()
                    .push((row[1], row[2]));
            }
        }
        for (n, points) in by_universe {
            for w in points.windows(2) {
                assert!(
                    w[1].1 <= w[0].1 + 1e-6,
                    "n={n}: delay rose with capacity: {:?}",
                    w
                );
            }
        }
    }

    #[test]
    fn fig7_8_nonuniform_competitive_across_sweep() {
        let t = fig7_8(Scale::Smoke);
        // The paper's observation (Fig 7.8): the non-uniform heuristic
        // tracks uniform capacities closely and wins at intermediate
        // capacities. It is not *pointwise* dominant: at the top of the
        // sweep the non-uniform caps [L_opt, 1] are a strict subset of the
        // uniform caps (all 1), so the more-constrained LP may give back a
        // fraction of a percent. Assert the qualitative claim instead:
        // never lose by more than 1 % relative, and strictly win somewhere.
        let mut wins = 0;
        for row in &t.rows {
            let (resp_u, resp_n) = (row[2], row[3]);
            if resp_u.is_nan() || resp_n.is_nan() {
                continue;
            }
            assert!(
                resp_n <= resp_u * 1.01 + 1e-6,
                "non-uniform {resp_n} loses >1% to uniform {resp_u} at c={}",
                row[0]
            );
            if resp_n < resp_u - 1e-6 {
                wins += 1;
            }
        }
        assert!(
            wins > 0,
            "non-uniform never beat uniform anywhere on the sweep"
        );
    }
}
