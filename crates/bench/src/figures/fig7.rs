//! §7 capacity-tuning figures (7.6, 7.7, 7.8): LP-optimized strategies
//! under uniform and non-uniform node capacities.
//!
//! Each figure is a (universe size × capacity) grid of independent LP
//! solves. The pipelines run in two parallel stages on the global
//! [`ParPool`]: first the per-`k` setups (placement search + quorum
//! enumeration), then every grid cell at once, each cell reusing the
//! per-`k` [`PlacedQuorums`] geometry cache. Rows are emitted in the
//! same (k, capacity) order as the original serial loops, and every
//! cell is a pure function of its inputs, so tables are bit-for-bit
//! identical for any thread count.

use qp_core::eval::{EvalContext, PlacedQuorums};
use qp_core::one_to_one;
use qp_core::strategy_lp::{
    evaluate_at_nonuniform_capacity_placed, evaluate_at_uniform_capacity_placed,
};
use qp_core::{CoreError, Placement, ResponseModel};
use qp_par::ParPool;
use qp_quorum::{Quorum, QuorumSystem};
use qp_topology::{datasets, Network, NodeId};

use crate::figures::fig6::OP_SRV_TIME_MS;
use crate::{Scale, Table};

const DEMAND: f64 = 16000.0;

fn setup(scale: Scale) -> (Network, Vec<NodeId>, Vec<usize>, usize) {
    let net = datasets::planetlab_50();
    let clients: Vec<NodeId> = net.nodes().collect();
    let (ks, steps) = match scale {
        Scale::Full => ((2..=7).collect::<Vec<_>>(), 10),
        Scale::Smoke => (vec![2, 3], 4),
    };
    (net, clients, ks, steps)
}

/// Per-`k` sweep inputs: system, best placement, enumerated quorums,
/// and the capacity grid.
struct GridSetup {
    k: usize,
    l_opt: f64,
    placement: Placement,
    quorums: Vec<Quorum>,
    sweep: Vec<f64>,
}

/// Stage 1: build every per-`k` setup in parallel (the placement
/// search dominates).
fn grid_setups(ctx: &EvalContext<'_>, ks: &[usize], steps: usize) -> Vec<GridSetup> {
    ParPool::global().run(ks.len(), |i| {
        let k = ks[i];
        let sys = QuorumSystem::grid(k).expect("k ≥ 1");
        let l_opt = sys.optimal_load().expect("grid");
        let placement = one_to_one::best_placement_ctx(ctx, &sys).expect("fits");
        let quorums = sys.enumerate(100_000).expect("k² quorums");
        let sweep = qp_core::capacity::capacity_sweep(l_opt, steps);
        GridSetup {
            k,
            l_opt,
            placement,
            quorums,
            sweep,
        }
    })
}

/// The shared parallel-grid harness of Figures 7.6–7.8: bind each
/// setup's geometry once, flatten the (setup × capacity) grid into
/// cells in row-emission order, evaluate every cell on the global pool,
/// and return the rows in that same order.
fn run_grid(
    ctx: &EvalContext<'_>,
    setups: &[GridSetup],
    cell: impl Fn(&PlacedQuorums<'_>, &GridSetup, f64) -> Vec<f64> + Sync,
) -> Vec<Vec<f64>> {
    let pqs: Vec<PlacedQuorums<'_>> = setups
        .iter()
        .map(|s| ctx.place(&s.placement, &s.quorums))
        .collect();
    let cells: Vec<(usize, usize)> = setups
        .iter()
        .enumerate()
        .flat_map(|(si, s)| (0..s.sweep.len()).map(move |ci| (si, ci)))
        .collect();
    ParPool::global().run(cells.len(), |j| {
        let (si, ci) = cells[j];
        let s = &setups[si];
        cell(&pqs[si], s, s.sweep[ci])
    })
}

/// Figure 7.6: the (universe size × uniform node capacity) surface of
/// network delay and response time for LP-tuned strategies, Grid on
/// Planetlab-50, demand 16000.
pub fn fig7_6(scale: Scale) -> Table {
    let (net, clients, ks, steps) = setup(scale);
    let ctx = EvalContext::new(&net, &clients);
    let model = ResponseModel::from_demand(OP_SRV_TIME_MS, DEMAND);
    let mut table = Table::new(
        "fig7_6",
        "Fig 7.6 — LP-tuned strategies: delay & response vs (universe, uniform capacity) (Grid, Planetlab-50, demand 16000)",
        vec![
            "universe_n".into(),
            "capacity".into(),
            "network_delay_ms".into(),
            "response_time_ms".into(),
        ],
    );
    let setups = grid_setups(&ctx, &ks, steps);
    let rows = run_grid(
        &ctx,
        &setups,
        |pq, s, c| match evaluate_at_uniform_capacity_placed(pq, c, model) {
            Ok((_, eval)) => vec![
                (s.k * s.k) as f64,
                c,
                eval.avg_network_delay_ms,
                eval.avg_response_ms,
            ],
            Err(CoreError::Infeasible) => vec![(s.k * s.k) as f64, c, f64::NAN, f64::NAN],
            Err(e) => panic!("unexpected failure at k={}, c={c}: {e}", s.k),
        },
    );
    for row in rows {
        table.push_row(row);
    }
    table
}

/// Figure 7.7: response time under uniform (`cap = cᵢ` everywhere) vs
/// non-uniform (`[β, γ] = [L_opt, cᵢ]` inverse-distance heuristic)
/// capacities over the same surface.
pub fn fig7_7(scale: Scale) -> Table {
    let (net, clients, ks, steps) = setup(scale);
    let ctx = EvalContext::new(&net, &clients);
    let model = ResponseModel::from_demand(OP_SRV_TIME_MS, DEMAND);
    let mut table = Table::new(
        "fig7_7",
        "Fig 7.7 — Uniform vs non-uniform node capacities (Grid, Planetlab-50, demand 16000)",
        vec![
            "universe_n".into(),
            "capacity".into(),
            "network_delay_ms".into(),
            "response_uniform_ms".into(),
            "response_nonuniform_ms".into(),
        ],
    );
    let setups = grid_setups(&ctx, &ks, steps);
    let rows = run_grid(&ctx, &setups, |pq, s, c| {
        let (delay, resp_u, resp_n) = uniform_vs_nonuniform(pq, s, c, model);
        vec![(s.k * s.k) as f64, c, delay, resp_u, resp_n]
    });
    for row in rows {
        table.push_row(row);
    }
    table
}

/// One Figure 7.7/7.8 cell: `(network delay, uniform response,
/// non-uniform response)` at capacity `c`, NaN where the LP is
/// infeasible.
fn uniform_vs_nonuniform(
    pq: &PlacedQuorums<'_>,
    s: &GridSetup,
    c: f64,
    model: ResponseModel,
) -> (f64, f64, f64) {
    let uniform = evaluate_at_uniform_capacity_placed(pq, c, model);
    let nonuniform = evaluate_at_nonuniform_capacity_placed(pq, s.l_opt, c, model);
    let (delay, resp_u) = match &uniform {
        Ok((_, e)) => (e.avg_network_delay_ms, e.avg_response_ms),
        Err(_) => (f64::NAN, f64::NAN),
    };
    let resp_n = match &nonuniform {
        Ok((_, e)) => e.avg_response_ms,
        Err(_) => f64::NAN,
    };
    (delay, resp_u, resp_n)
}

/// Figure 7.8: the `n = 49` (7×7) slice of Figure 7.7 — response vs
/// capacity for uniform and non-uniform capacities.
pub fn fig7_8(scale: Scale) -> Table {
    let net = datasets::planetlab_50();
    let clients: Vec<NodeId> = net.nodes().collect();
    let ctx = EvalContext::new(&net, &clients);
    let (k, steps) = match scale {
        Scale::Full => (7, 10),
        Scale::Smoke => (3, 4),
    };
    let model = ResponseModel::from_demand(OP_SRV_TIME_MS, DEMAND);
    let setups = grid_setups(&ctx, &[k], steps);
    let mut table = Table::new(
        "fig7_8",
        "Fig 7.8 — 7×7 Grid on Planetlab-50: response vs capacity, uniform vs non-uniform (demand 16000)",
        vec![
            "capacity".into(),
            "network_delay_ms".into(),
            "response_uniform_ms".into(),
            "response_nonuniform_ms".into(),
        ],
    );
    let rows = run_grid(&ctx, &setups, |pq, s, c| {
        let (delay, resp_u, resp_n) = uniform_vs_nonuniform(pq, s, c, model);
        vec![c, delay, resp_u, resp_n]
    });
    for row in rows {
        table.push_row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_6_delay_decreases_with_capacity() {
        let t = fig7_6(Scale::Smoke);
        // Within one universe size, higher capacity lets clients use closer
        // quorums: network delay must be non-increasing in capacity.
        let mut by_universe: std::collections::BTreeMap<i64, Vec<(f64, f64)>> = Default::default();
        for row in &t.rows {
            if !row[2].is_nan() {
                by_universe
                    .entry(row[0] as i64)
                    .or_default()
                    .push((row[1], row[2]));
            }
        }
        for (n, points) in by_universe {
            for w in points.windows(2) {
                assert!(
                    w[1].1 <= w[0].1 + 1e-6,
                    "n={n}: delay rose with capacity: {:?}",
                    w
                );
            }
        }
    }

    #[test]
    fn fig7_8_nonuniform_competitive_across_sweep() {
        let t = fig7_8(Scale::Smoke);
        // The paper's observation (Fig 7.8): the non-uniform heuristic
        // tracks uniform capacities closely and wins at intermediate
        // capacities. It is not *pointwise* dominant: at the top of the
        // sweep the non-uniform caps [L_opt, 1] are a strict subset of the
        // uniform caps (all 1), so the more-constrained LP may give back a
        // fraction of a percent. Assert the qualitative claim instead:
        // never lose by more than 1 % relative, and strictly win somewhere.
        let mut wins = 0;
        for row in &t.rows {
            let (resp_u, resp_n) = (row[2], row[3]);
            if resp_u.is_nan() || resp_n.is_nan() {
                continue;
            }
            assert!(
                resp_n <= resp_u * 1.01 + 1e-6,
                "non-uniform {resp_n} loses >1% to uniform {resp_u} at c={}",
                row[0]
            );
            if resp_n < resp_u - 1e-6 {
                wins += 1;
            }
        }
        assert!(
            wins > 0,
            "non-uniform never beat uniform anywhere on the sweep"
        );
    }
}
