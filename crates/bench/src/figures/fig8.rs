//! §7's iterative many-to-one evaluation (Figure 8.9).

use qp_core::capacity::{capacity_sweep, CapacityProfile};
use qp_core::eval::EvalContext;
use qp_core::manyone::ManyToOneConfig;
use qp_core::response::evaluate_closest_ctx;
use qp_core::{iterative, one_to_one, CoreError, ResponseModel};
use qp_par::ParPool;
use qp_quorum::QuorumSystem;
use qp_topology::{datasets, NodeId};

use crate::{Scale, Table};

/// Figure 8.9: network delay of the iterative many-to-one algorithm on the
/// 5×5 Grid over Planetlab-50, as a function of the (uniform) node
/// capacity, against the one-to-one placement baseline.
///
/// The paper plots the delay after the 1st and 2nd iterations; our history
/// records both phases of each iteration, and we report iteration 1's
/// phase-2 delay as "1st iteration" and iteration 2's (when the algorithm
/// runs that far — most runs terminate after one iteration, as the paper
/// observes) as "2nd iteration".
pub fn fig8_9(scale: Scale) -> Table {
    let net = datasets::planetlab_50();
    let clients: Vec<NodeId> = net.nodes().collect();
    // Smoke uses k = 4 rather than 2: co-locating two elements needs
    // capacity ≥ 2·(2k−1)/k², which never fits below 1.0 for tiny grids.
    let (k, steps) = match scale {
        Scale::Full => (5, 10),
        Scale::Smoke => (4, 3),
    };
    let sys = QuorumSystem::grid(k).expect("k ≥ 1");
    let l_opt = sys.optimal_load().expect("grid");
    let quorums = sys.enumerate(100_000).expect("k² quorums");
    // α = 0: §8.9 studies the network-delay objective.
    let model = ResponseModel::network_delay_only();

    // One-to-one baseline (capacity-independent).
    let ctx = EvalContext::new(&net, &clients);
    let one_one = one_to_one::best_placement_ctx(&ctx, &sys).expect("fits");
    let baseline = evaluate_closest_ctx(&ctx, &sys, &one_one, model)
        .expect("evaluation succeeds")
        .avg_network_delay_ms;

    let mut table = Table::new(
        "fig8_9",
        "Fig 8.9 — Iterative many-to-one: network delay vs node capacity (5×5 Grid, Planetlab-50)",
        vec![
            "capacity".into(),
            "delay_iter1_ms".into(),
            "delay_iter2_ms".into(),
            "delay_one_to_one_ms".into(),
        ],
    );
    // capacity_slack = 2 reproduces the paper's almost-capacity-respecting
    // placement phase: loads may exceed the nominal capacity by the
    // classical constant factor, which is what lets co-location pay off
    // even at tight capacities (see `ManyToOneConfig::capacity_slack`).
    let m2o = ManyToOneConfig {
        capacity_slack: 2.0,
        ..ManyToOneConfig::default()
    };
    // Every sweep point is an independent run of the full iterative
    // algorithm (two LPs per iteration) — the coarsest useful parallel
    // grain of this figure.
    let cs = capacity_sweep(l_opt, steps);
    let rows: Vec<Vec<f64>> = ParPool::global().run(cs.len(), |i| {
        let c = cs[i];
        let caps0 = CapacityProfile::uniform(net.len(), c);
        match iterative::optimize_ctx(&ctx, &quorums, &caps0, model, 2, &m2o) {
            Ok(result) => {
                let it1 = result.history[0].after_strategy.avg_network_delay_ms;
                let it2 = result
                    .history
                    .get(1)
                    .map(|r| r.after_strategy.avg_network_delay_ms)
                    .unwrap_or(it1);
                vec![c, it1, it2, baseline]
            }
            Err(CoreError::Infeasible) => vec![c, f64::NAN, f64::NAN, baseline],
            Err(e) => panic!("unexpected failure at c={c}: {e}"),
        }
    });
    for row in rows {
        table.push_row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn many_to_one_beats_one_to_one_delay() {
        let t = fig8_9(Scale::Smoke);
        // "Since this approach creates many-to-one placements, network
        // delay will necessarily decrease": co-location pays off once
        // capacity admits two elements per node; below that threshold the
        // iterative result may only tie the one-to-one baseline (its LP
        // optimizes a weighted-sum proxy, so allow a small tolerance).
        let mut feasible = 0;
        let mut improved_at_top = false;
        for row in &t.rows {
            if row[1].is_nan() {
                continue;
            }
            feasible += 1;
            let best_iter = row[1].min(row[2]);
            assert!(
                best_iter <= row[3] * 1.01 + 1e-6,
                "iterative delay {best_iter} much worse than one-to-one {}",
                row[3]
            );
            if (row[0] - 1.0).abs() < 1e-9 && best_iter < row[3] - 1e-6 {
                improved_at_top = true;
            }
        }
        assert!(feasible > 0, "no feasible sweep point");
        assert!(
            improved_at_top,
            "co-location should beat one-to-one at capacity 1.0"
        );
    }
}
