//! One pipeline per paper figure.
//!
//! All pipelines are deterministic: the topology generators and the DES are
//! seeded, so repeated runs produce identical tables.

mod fig3;
pub(crate) mod fig6;
mod fig7;
mod fig8;

pub use fig3::{fig3_1, fig3_2a, fig3_2b};
pub use fig6::{fig6_3, fig6_4, fig6_5};
pub use fig7::{fig7_6, fig7_7, fig7_8};
pub use fig8::fig8_9;
