//! §6–§7 one-to-one placement figures (6.3, 6.4, 6.5).

use qp_core::eval::EvalContext;
use qp_core::one_to_one;
use qp_core::response::{evaluate_balanced_ctx, evaluate_closest_ctx};
use qp_core::singleton::singleton_delay;
use qp_core::ResponseModel;
use qp_par::ParPool;
use qp_quorum::{MajorityKind, QuorumSystem};
use qp_topology::{datasets, Network, NodeId};

use crate::{Scale, Table};

/// The per-request service time used throughout §7: 0.007 ms (a Q/U write
/// on the authors' 2.8 GHz Pentium 4).
pub const OP_SRV_TIME_MS: f64 = 0.007;

/// Figure 6.3: response time vs universe size on Planetlab-50 with `α = 0`
/// and the closest access strategy, for the three Majorities, the Grid,
/// and the singleton baseline.
///
/// Universe sizes: every `t` (resp. `k`) whose universe fits in the
/// 50-node graph, exactly as §5 prescribes. Output columns are per-system
/// response times; rows are universe sizes, NaN where a system has no
/// construction of that size.
pub fn fig6_3(scale: Scale) -> Table {
    let net = datasets::planetlab_50();
    let clients: Vec<NodeId> = net.nodes().collect();
    let model = ResponseModel::network_delay_only();
    let max_universe = match scale {
        Scale::Full => net.len() - 1, // 49, as in the paper's x-axis
        Scale::Smoke => 16,
    };

    // (universe size, column index, response) points per system.
    let mut table = Table::new(
        "fig6_3",
        "Fig 6.3 — Response time vs universe size (Planetlab-50, α=0, closest strategy)",
        vec![
            "universe_n".into(),
            "maj_t1_2t1_ms".into(),
            "maj_2t1_3t1_ms".into(),
            "maj_4t1_5t1_ms".into(),
            "grid_ms".into(),
            "singleton_ms".into(),
        ],
    );

    let singleton = singleton_delay(&net, &clients);
    let mut rows: std::collections::BTreeMap<usize, Vec<f64>> = std::collections::BTreeMap::new();
    fn row_at(rows: &mut std::collections::BTreeMap<usize, Vec<f64>>, n: usize) -> &mut Vec<f64> {
        rows.entry(n).or_insert_with(|| vec![f64::NAN; 5])
    }

    // One (column, system, universe) job per curve point; every point is
    // an independent placement search + evaluation, run in parallel on
    // the shared context.
    let ctx = EvalContext::new(&net, &clients);
    let mut jobs: Vec<(usize, QuorumSystem, usize)> = Vec::new();
    for (col, kind) in MajorityKind::ALL.iter().enumerate() {
        let max_t = kind.max_t_for_universe(max_universe).unwrap_or(0);
        for t in 1..=max_t {
            let sys = QuorumSystem::majority(*kind, t).expect("t ≥ 1");
            jobs.push((col, sys, kind.universe_size(t)));
        }
    }
    let max_k = (max_universe as f64).sqrt().floor() as usize;
    for k in 2..=max_k {
        jobs.push((3, QuorumSystem::grid(k).expect("k ≥ 1"), k * k));
    }
    let responses: Vec<f64> = ParPool::global().run(jobs.len(), |i| {
        let (_, sys, _) = &jobs[i];
        let placement = one_to_one::best_placement_ctx(&ctx, sys).expect("universe fits");
        evaluate_closest_ctx(&ctx, sys, &placement, model)
            .expect("evaluation succeeds")
            .avg_response_ms
    });
    for ((col, _, n), resp) in jobs.iter().zip(responses) {
        row_at(&mut rows, *n)[*col] = resp;
    }
    // Singleton baseline appears at every row.
    for (n, mut vals) in rows {
        vals[4] = singleton;
        let mut row = vec![n as f64];
        row.extend(vals);
        table.push_row(row);
    }
    table
}

fn grid_sizes(net: &Network, scale: Scale) -> Vec<usize> {
    let max_k = (net.len() as f64).sqrt().floor() as usize;
    match scale {
        Scale::Full => (2..=max_k).collect(),
        Scale::Smoke => (2..=max_k.min(4)).collect(),
    }
}

/// Shared engine for Figures 6.4 and 6.5: Grid on daxlist-161, closest and
/// balanced strategies at the given demands.
fn grid_daxlist(demands: &[f64], id: &str, title: &str, scale: Scale) -> Table {
    let net = match scale {
        Scale::Full => datasets::daxlist_161(),
        // Same generator family, smaller instance, for smoke runs.
        Scale::Smoke => datasets::euclidean_random(30, 120.0, 7),
    };
    let clients: Vec<NodeId> = net.nodes().collect();

    let mut columns = vec!["universe_n".into()];
    for &d in demands {
        columns.push(format!("closest_delay_ms_d{d}"));
        columns.push(format!("closest_resp_ms_d{d}"));
        columns.push(format!("balanced_delay_ms_d{d}"));
        columns.push(format!("balanced_resp_ms_d{d}"));
    }
    let mut table = Table::new(id, title, columns);

    // One job per universe size; rows land in `ks` order.
    let ctx = EvalContext::new(&net, &clients);
    let ks = grid_sizes(&net, scale);
    let rows: Vec<Vec<f64>> = ParPool::global().run(ks.len(), |i| {
        let k = ks[i];
        let sys = QuorumSystem::grid(k).expect("k ≥ 1");
        let placement = one_to_one::best_placement_ctx(&ctx, &sys).expect("universe fits");
        let mut row = vec![(k * k) as f64];
        for &demand in demands {
            let model = ResponseModel::from_demand(OP_SRV_TIME_MS, demand);
            let closest =
                evaluate_closest_ctx(&ctx, &sys, &placement, model).expect("evaluation succeeds");
            let balanced =
                evaluate_balanced_ctx(&ctx, &sys, &placement, model).expect("grid enumerates");
            row.push(closest.avg_network_delay_ms);
            row.push(closest.avg_response_ms);
            row.push(balanced.avg_network_delay_ms);
            row.push(balanced.avg_response_ms);
        }
        row
    });
    for row in rows {
        table.push_row(row);
    }
    table
}

/// Figure 6.4: Grid on daxlist-161, closest vs balanced, demand ∈
/// {1000, 4000}.
pub fn fig6_4(scale: Scale) -> Table {
    grid_daxlist(
        &[1000.0, 4000.0],
        "fig6_4",
        "Fig 6.4 — Grid response time under closest vs balanced strategies (daxlist-161, demand 1000/4000)",
        scale,
    )
}

/// Figure 6.5: the same sweep at demand = 16000, plotting both network
/// delay and response time per strategy.
pub fn fig6_5(scale: Scale) -> Table {
    grid_daxlist(
        &[16000.0],
        "fig6_5",
        "Fig 6.5 — Grid network delay & response time, closest vs balanced (daxlist-161, demand 16000)",
        scale,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_3_smoke_shapes() {
        let t = fig6_3(Scale::Smoke);
        // Universe sizes present: majorities 3,5,7,9,11,13,15 (t+1,2t+1);
        // 4,7,10,13,16 (2t+1,3t+1); 6,11,16 (4t+1,5t+1); grids 4,9,16.
        assert!(!t.rows.is_empty());
        // Singleton column is constant.
        let s = t.column("singleton_ms");
        assert!(s.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-12));
        // Grid at n=4 must beat the (4t+1,5t+1) majority at n=6 (smaller
        // quorums ⇒ better response), modulo NaN padding.
        for row in &t.rows {
            let grid = row[4];
            if !grid.is_nan() {
                assert!(grid > 0.0);
            }
        }
    }

    #[test]
    fn fig6_5_balanced_wins_at_high_demand_for_small_universes() {
        let t = fig6_5(Scale::Smoke);
        // At demand 16000 the load term dominates for small universes:
        // balanced response must beat closest response on the smallest
        // universe (where closest concentrates all load on 2k−1 nodes).
        let first = &t.rows[0];
        let closest_resp = first[2];
        let balanced_resp = first[4];
        assert!(
            balanced_resp < closest_resp,
            "balanced {balanced_resp} should beat closest {closest_resp} at demand 16000"
        );
    }
}
