//! §3 — the Q/U motivating experiments (Figures 3.1, 3.2a, 3.2b).
//!
//! The paper ran Q/U on a Modelnet emulation of the Planetlab-50 topology:
//! `n = 5t+1` servers with quorums of `4t+1`, placed by the
//! delay-minimizing one-to-one algorithm; 10 representative client
//! locations running `c` clients each; uniform-random quorum selection;
//! 1 ms of processing per request. We reproduce it with the `qp-protocol`
//! discrete-event simulation, averaging over 5 seeded runs exactly as the
//! paper averages over 5 experiment repetitions.

use qp_core::one_to_one::{self, SelectionObjective};
use qp_core::Placement;
use qp_par::ParPool;
use qp_protocol::{simulate_many, ClientPopulation, ProtocolConfig, QuorumChoice};
use qp_quorum::{MajorityKind, QuorumSystem};
use qp_topology::{datasets, Network};

use crate::{Scale, Table};

const RUNS: u64 = 5;

fn qu_system(t: usize) -> QuorumSystem {
    QuorumSystem::majority(MajorityKind::FourFifths, t).expect("t ≥ 1")
}

fn qu_placement(net: &Network, sys: &QuorumSystem) -> Placement {
    // The §3 text: servers placed by the algorithm that "approximately
    // minimizes the average network delay that each client experiences when
    // accessing a quorum uniformly at random".
    one_to_one::best_placement_by(net, sys, SelectionObjective::BalancedDelay)
        .expect("placement fits the 50-node topology")
}

fn measured_requests(scale: Scale) -> usize {
    match scale {
        Scale::Full => 120,
        Scale::Smoke => 15,
    }
}

/// Runs the Q/U DES for a prepared `(system, placement)` pair and
/// `clients-per-location`, returning `(avg response ms, avg network
/// delay ms)` averaged over [`RUNS`] seeds.
///
/// The seeded repetitions run through the parallel multi-run driver
/// ([`simulate_many`]); reports come back in seed order, so the
/// accumulation below matches the historical serial loop bit for bit.
fn qu_point(
    net: &Network,
    sys: &QuorumSystem,
    placement: &Placement,
    per_location: usize,
    scale: Scale,
) -> (f64, f64) {
    let base = ClientPopulation::representative(net, sys, placement, 10, 1);
    let pop = base.with_per_location(per_location);
    let seeds: Vec<u64> = (0..RUNS).collect();
    let reports = simulate_many(
        net,
        sys,
        placement,
        &pop,
        &QuorumChoice::Balanced,
        &ProtocolConfig {
            service_time_ms: 1.0,
            warmup_requests: 10,
            measured_requests: measured_requests(scale),
            seed: 0,
            service_multipliers: None,
            dedup_colocated: false,
            streaming_percentiles: false,
            initial_server_busy_ms: None,
            fault: None,
        },
        &seeds,
    )
    .expect("simulation inputs are consistent");
    let mut resp = 0.0;
    let mut delay = 0.0;
    for report in &reports {
        resp += report.avg_response_ms;
        delay += report.avg_network_delay_ms;
    }
    (resp / RUNS as f64, delay / RUNS as f64)
}

/// Stage 1 of every §3 pipeline: the per-`t` system + placement pairs,
/// searched in parallel.
fn qu_setups(net: &Network, ts: &[usize]) -> Vec<(QuorumSystem, Placement)> {
    ParPool::global().run(ts.len(), |i| {
        let sys = qu_system(ts[i]);
        let placement = qu_placement(net, &sys);
        (sys, placement)
    })
}

fn t_values(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Full => vec![1, 2, 3, 4, 5],
        Scale::Smoke => vec![1, 2],
    }
}

fn client_counts(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Full => (1..=10).collect(),
        Scale::Smoke => vec![1, 3],
    }
}

/// Figure 3.1: the response-time / network-delay surface over
/// (universe size `n = 5t+1`) × (number of clients `10·c`).
pub fn fig3_1(scale: Scale) -> Table {
    let net = datasets::planetlab_50();
    let mut table = Table::new(
        "fig3_1",
        "Fig 3.1 — Q/U avg response time & network delay vs universe size and #clients (Planetlab-50, DES)",
        vec![
            "universe_n".into(),
            "clients".into(),
            "network_delay_ms".into(),
            "response_time_ms".into(),
        ],
    );
    let ts = t_values(scale);
    let counts = client_counts(scale);
    let setups = qu_setups(&net, &ts);
    // Stage 2: every (t, clients) cell is an independent DES average.
    let cells: Vec<(usize, usize)> = (0..ts.len())
        .flat_map(|ti| (0..counts.len()).map(move |ci| (ti, ci)))
        .collect();
    let points = ParPool::global().run(cells.len(), |j| {
        let (ti, ci) = cells[j];
        let (sys, placement) = &setups[ti];
        qu_point(&net, sys, placement, counts[ci], scale)
    });
    for ((ti, ci), (resp, delay)) in cells.into_iter().zip(points) {
        table.push_row(vec![
            (5 * ts[ti] + 1) as f64,
            (10 * counts[ci]) as f64,
            delay,
            resp,
        ]);
    }
    table
}

/// Figure 3.2a: delay (black bars) and response (total bars) vs fault
/// threshold `t`, at 100 clients.
pub fn fig3_2a(scale: Scale) -> Table {
    let net = datasets::planetlab_50();
    let per_location = match scale {
        Scale::Full => 10,
        Scale::Smoke => 2,
    };
    let mut table = Table::new(
        "fig3_2a",
        "Fig 3.2a — Q/U avg network delay & response time vs #faults t (100 clients, Planetlab-50, DES)",
        vec![
            "t".into(),
            "universe_n".into(),
            "network_delay_ms".into(),
            "response_time_ms".into(),
        ],
    );
    let ts = t_values(scale);
    let setups = qu_setups(&net, &ts);
    let points = ParPool::global().run(ts.len(), |ti| {
        let (sys, placement) = &setups[ti];
        qu_point(&net, sys, placement, per_location, scale)
    });
    for (&t, (resp, delay)) in ts.iter().zip(points) {
        table.push_row(vec![t as f64, (5 * t + 1) as f64, delay, resp]);
    }
    table
}

/// Figure 3.2b: delay and response vs number of clients at `t = 4`
/// (`n = 21`).
pub fn fig3_2b(scale: Scale) -> Table {
    let net = datasets::planetlab_50();
    let t = match scale {
        Scale::Full => 4,
        Scale::Smoke => 1,
    };
    let counts = match scale {
        Scale::Full => (1..=11).collect::<Vec<_>>(),
        Scale::Smoke => vec![1, 2],
    };
    let mut table = Table::new(
        "fig3_2b",
        "Fig 3.2b — Q/U avg network delay & response time vs #clients (t=4, n=21, Planetlab-50, DES)",
        vec![
            "clients".into(),
            "network_delay_ms".into(),
            "response_time_ms".into(),
        ],
    );
    let setups = qu_setups(&net, &[t]);
    let (sys, placement) = &setups[0];
    let points = ParPool::global().run(counts.len(), |ci| {
        qu_point(&net, sys, placement, counts[ci], scale)
    });
    for (&c, (resp, delay)) in counts.iter().zip(points) {
        table.push_row(vec![(10 * c) as f64, delay, resp]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_1_smoke_has_expected_shape() {
        let t = fig3_1(Scale::Smoke);
        assert_eq!(t.columns.len(), 4);
        assert_eq!(t.rows.len(), 4); // 2 t-values × 2 client counts
        for row in &t.rows {
            let (delay, resp) = (row[2], row[3]);
            assert!(resp >= delay - 1e-9, "response below its network floor");
            assert!(delay > 0.0);
        }
    }

    #[test]
    fn fig3_2b_response_grows_with_clients() {
        let t = fig3_2b(Scale::Smoke);
        let resp = t.column("response_time_ms");
        assert!(*resp.last().unwrap() >= resp.first().unwrap() - 1.0);
    }
}
