//! Benchmark harness reproducing every figure of Oprea & Reiter (DSN 2007).
//!
//! Each figure of the paper's evaluation has a pipeline function in
//! [`figures`] returning a [`Table`] of the same series the paper plots,
//! and a binary (`fig3_1`, `fig3_2a`, …, `fig8_9`) that runs it at full
//! scale and prints the table (pass `--csv` for machine-readable output).
//!
//! The pipelines accept a [`Scale`] so the Criterion benches can exercise
//! the same code paths at reduced size.
//!
//! | Binary | Paper figure | What it reproduces |
//! |---|---|---|
//! | `fig3_1`  | Fig. 3.1  | Q/U response time & network delay vs (universe size × #clients), DES |
//! | `fig3_2a` | Fig. 3.2a | Q/U delay & response vs fault threshold `t`, 100 clients |
//! | `fig3_2b` | Fig. 3.2b | Q/U delay & response vs #clients, `t = 4`, `n = 21` |
//! | `fig6_3`  | Fig. 6.3  | Response time vs universe size, α = 0, closest strategy, all systems + singleton |
//! | `fig6_4`  | Fig. 6.4  | Grid on daxlist-161: closest vs balanced at demand 1000 / 4000 |
//! | `fig6_5`  | Fig. 6.5  | Grid on daxlist-161 at demand 16000: delay & response components |
//! | `fig7_6`  | Fig. 7.6  | LP-tuned strategies over (universe × uniform capacity), demand 16000 |
//! | `fig7_7`  | Fig. 7.7  | Uniform vs non-uniform capacities over the same sweep |
//! | `fig7_8`  | Fig. 7.8  | 7×7 Grid: response vs capacity, uniform vs non-uniform |
//! | `fig8_9`  | Fig. 8.9  | Iterative many-to-one: network delay per phase vs capacity |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
mod table;

pub use table::Table;

/// Experiment scale: `Full` regenerates the paper's figures; `Smoke` is a
/// reduced version for CI and Criterion runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Scale {
    /// Paper-scale parameters.
    #[default]
    Full,
    /// Reduced parameters (small universes, few requests) exercising the
    /// identical code paths.
    Smoke,
}

impl Scale {
    /// Parses `--smoke` from CLI arguments.
    pub fn from_args<I: IntoIterator<Item = String>>(args: I) -> Self {
        if args.into_iter().any(|a| a == "--smoke") {
            Scale::Smoke
        } else {
            Scale::Full
        }
    }
}

/// Parses an optional `--threads N` flag and configures the global
/// worker pool ([`qp_par::configure_threads`]). `N = 0` is rejected.
///
/// # Errors
///
/// A human-readable message when the flag has no value, a non-numeric
/// value, or the value 0.
pub fn apply_threads_flag(args: &[String]) -> Result<(), String> {
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if flag == "--threads" {
            let value = it.next().ok_or("--threads requires a value")?;
            let n: usize = value
                .parse()
                .map_err(|_| format!("--threads: `{value}` is not a positive integer"))?;
            if n == 0 {
                return Err("--threads must be at least 1".to_string());
            }
            qp_par::configure_threads(n);
        }
    }
    Ok(())
}

/// Standard main body for figure binaries: run the pipeline, print the
/// table (and CSV when `--csv` is passed). `--threads N` sets the
/// worker-pool width (default: available parallelism); output is
/// identical for any thread count.
pub fn run_figure<F: FnOnce(Scale) -> Table>(pipeline: F) {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Err(e) = apply_threads_flag(&args) {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
    let scale = Scale::from_args(args.iter().cloned());
    let csv = args.iter().any(|a| a == "--csv");
    let table = pipeline(scale);
    if csv {
        print!("{}", table.to_csv());
    } else {
        print!("{table}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parses_flag() {
        assert_eq!(Scale::from_args(vec!["--smoke".to_string()]), Scale::Smoke);
        assert_eq!(Scale::from_args(vec!["--csv".to_string()]), Scale::Full);
        assert_eq!(Scale::from_args(Vec::<String>::new()), Scale::Full);
    }

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn threads_flag_validation() {
        assert!(apply_threads_flag(&args(&["--smoke"])).is_ok());
        assert!(apply_threads_flag(&args(&["--threads", "2"])).is_ok());
        assert!(apply_threads_flag(&args(&["--threads"])).is_err());
        assert!(apply_threads_flag(&args(&["--threads", "zero"])).is_err());
        assert!(apply_threads_flag(&args(&["--threads", "0"])).is_err());
    }
}
