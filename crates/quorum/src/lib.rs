//! Quorum-system substrate: the set-system side of the paper.
//!
//! A *quorum system* over a universe `U` of logical elements is a collection
//! of subsets (*quorums*) of `U`, any two of which intersect. This crate
//! provides the constructions the paper evaluates (§5, "Quorum systems"):
//!
//! * the three **Majority** families used in protocol implementations —
//!   `(t+1, 2t+1)`, `(2t+1, 3t+1)` and `(4t+1, 5t+1)` (quorum size, universe
//!   size) — see [`MajorityKind`];
//! * the **k × k Grid**, whose quorums are one full row plus one full
//!   column (`m = k²` quorums of size `2k − 1`);
//! * arbitrary **explicit** systems for testing and extension.
//!
//! plus client **access strategies** (distributions over quorums, §4
//! "Load") and the induced element loads.
//!
//! # Examples
//!
//! ```
//! use qp_quorum::QuorumSystem;
//!
//! let grid = QuorumSystem::grid(3)?;
//! assert_eq!(grid.universe_size(), 9);
//! let quorums = grid.enumerate(usize::MAX)?;
//! assert_eq!(quorums.len(), 9);
//! // Any two quorums intersect.
//! assert!(QuorumSystem::verify_intersection(&quorums));
//! # Ok::<(), qp_quorum::QuorumError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod element;
mod error;
mod majority;
mod quorum;
mod strategy;
mod system;

pub use element::ElementId;
pub use error::QuorumError;
pub use majority::MajorityKind;
pub use quorum::Quorum;
pub use strategy::StrategyMatrix;
pub use system::QuorumSystem;
