//! The `Quorum` set type.

use std::fmt;

use crate::ElementId;

/// A single quorum: a sorted, duplicate-free set of universe elements.
///
/// # Examples
///
/// ```
/// use qp_quorum::{ElementId, Quorum};
///
/// let q = Quorum::new(vec![ElementId::new(2), ElementId::new(0)]);
/// assert_eq!(q.len(), 2);
/// assert!(q.contains(ElementId::new(0)));
/// let r = Quorum::new(vec![ElementId::new(2), ElementId::new(5)]);
/// assert!(q.intersects(&r));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Quorum {
    elements: Vec<ElementId>,
}

impl Quorum {
    /// Creates a quorum from a list of elements; the list is sorted and
    /// deduplicated.
    pub fn new(mut elements: Vec<ElementId>) -> Self {
        elements.sort_unstable();
        elements.dedup();
        Quorum { elements }
    }

    /// Number of elements in the quorum.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// Whether the quorum is empty (degenerate; valid systems never contain
    /// an empty quorum).
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// Membership test (binary search).
    pub fn contains(&self, u: ElementId) -> bool {
        self.elements.binary_search(&u).is_ok()
    }

    /// Whether two quorums share at least one element (linear merge scan).
    pub fn intersects(&self, other: &Quorum) -> bool {
        let (mut i, mut j) = (0, 0);
        while i < self.elements.len() && j < other.elements.len() {
            match self.elements[i].cmp(&other.elements[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }

    /// Iterator over the elements, ascending.
    pub fn iter(&self) -> impl Iterator<Item = ElementId> + '_ {
        self.elements.iter().copied()
    }

    /// The elements as a sorted slice.
    pub fn as_slice(&self) -> &[ElementId] {
        &self.elements
    }

    /// Whether `other` is a (non-strict) superset of this quorum.
    pub fn is_subset_of(&self, other: &Quorum) -> bool {
        self.elements.iter().all(|&u| other.contains(u))
    }
}

impl fmt::Display for Quorum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, u) in self.elements.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{u}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<ElementId> for Quorum {
    fn from_iter<I: IntoIterator<Item = ElementId>>(iter: I) -> Self {
        Quorum::new(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a Quorum {
    type Item = ElementId;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, ElementId>>;

    fn into_iter(self) -> Self::IntoIter {
        self.elements.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(ids: &[usize]) -> Quorum {
        ids.iter().copied().map(ElementId::new).collect()
    }

    #[test]
    fn new_sorts_and_dedups() {
        let quo = q(&[3, 1, 3, 2]);
        let got: Vec<usize> = quo.iter().map(ElementId::index).collect();
        assert_eq!(got, vec![1, 2, 3]);
    }

    #[test]
    fn intersects_cases() {
        assert!(q(&[1, 2, 3]).intersects(&q(&[3, 4])));
        assert!(!q(&[1, 2]).intersects(&q(&[3, 4])));
        assert!(!q(&[]).intersects(&q(&[1])));
    }

    #[test]
    fn subset_checks() {
        assert!(q(&[1, 2]).is_subset_of(&q(&[1, 2, 3])));
        assert!(!q(&[1, 4]).is_subset_of(&q(&[1, 2, 3])));
        assert!(q(&[]).is_subset_of(&q(&[])));
    }

    #[test]
    fn display_format() {
        assert_eq!(q(&[0, 2]).to_string(), "{u0,u2}");
        assert_eq!(q(&[]).to_string(), "{}");
    }
}
