//! Universe-element identifiers.

use std::fmt;

/// Identifier of a logical universe element of a quorum system.
///
/// Universe elements are *logical* servers; a placement (see `qp-core`) maps
/// them onto physical network nodes. The newtype keeps this namespace
/// distinct from `qp_topology::NodeId`.
///
/// # Examples
///
/// ```
/// use qp_quorum::ElementId;
///
/// let u = ElementId::new(3);
/// assert_eq!(u.index(), 3);
/// assert_eq!(u.to_string(), "u3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ElementId(usize);

impl ElementId {
    /// Creates an element identifier from a raw index.
    pub const fn new(index: usize) -> Self {
        ElementId(index)
    }

    /// The raw index of this element.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ElementId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

impl From<usize> for ElementId {
    fn from(index: usize) -> Self {
        ElementId(index)
    }
}

impl From<ElementId> for usize {
    fn from(id: ElementId) -> Self {
        id.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let u: ElementId = 9usize.into();
        assert_eq!(usize::from(u), 9);
    }

    #[test]
    fn display() {
        assert_eq!(ElementId::new(2).to_string(), "u2");
    }
}
