//! The Majority quorum-system families.

use std::fmt;

/// The three threshold ("Majority") families the paper evaluates, named by
/// their `(quorum size, universe size)` pattern as a function of the fault
/// threshold `t`.
///
/// | Variant | Quorum size | Universe size | Typical protocol |
/// |---|---|---|---|
/// | [`MajorityKind::SimpleMajority`] | `t + 1` | `2t + 1` | crash-tolerant majority voting / Paxos |
/// | [`MajorityKind::TwoThirds`] | `2t + 1` | `3t + 1` | BFT state machine replication |
/// | [`MajorityKind::FourFifths`] | `4t + 1` | `5t + 1` | Q/U-style optimistic BFT |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MajorityKind {
    /// The `(t+1, 2t+1)` Majority.
    SimpleMajority,
    /// The `(2t+1, 3t+1)` Majority.
    TwoThirds,
    /// The `(4t+1, 5t+1)` Majority.
    FourFifths,
}

impl MajorityKind {
    /// All three kinds, in the paper's order.
    pub const ALL: [MajorityKind; 3] = [
        MajorityKind::SimpleMajority,
        MajorityKind::TwoThirds,
        MajorityKind::FourFifths,
    ];

    /// Universe size `n` for fault threshold `t`.
    pub fn universe_size(self, t: usize) -> usize {
        match self {
            MajorityKind::SimpleMajority => 2 * t + 1,
            MajorityKind::TwoThirds => 3 * t + 1,
            MajorityKind::FourFifths => 5 * t + 1,
        }
    }

    /// Quorum size `q` for fault threshold `t`.
    pub fn quorum_size(self, t: usize) -> usize {
        match self {
            MajorityKind::SimpleMajority => t + 1,
            MajorityKind::TwoThirds => 2 * t + 1,
            MajorityKind::FourFifths => 4 * t + 1,
        }
    }

    /// Largest `t` whose universe fits within `max_universe` nodes, or
    /// `None` if even `t = 1` does not fit.
    pub fn max_t_for_universe(self, max_universe: usize) -> Option<usize> {
        let t = match self {
            MajorityKind::SimpleMajority => max_universe.checked_sub(1)? / 2,
            MajorityKind::TwoThirds => max_universe.checked_sub(1)? / 3,
            MajorityKind::FourFifths => max_universe.checked_sub(1)? / 5,
        };
        (t >= 1).then_some(t)
    }
}

impl fmt::Display for MajorityKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MajorityKind::SimpleMajority => write!(f, "(t+1, 2t+1) Majority"),
            MajorityKind::TwoThirds => write!(f, "(2t+1, 3t+1) Majority"),
            MajorityKind::FourFifths => write!(f, "(4t+1, 5t+1) Majority"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_paper() {
        assert_eq!(MajorityKind::SimpleMajority.universe_size(3), 7);
        assert_eq!(MajorityKind::SimpleMajority.quorum_size(3), 4);
        assert_eq!(MajorityKind::TwoThirds.universe_size(3), 10);
        assert_eq!(MajorityKind::TwoThirds.quorum_size(3), 7);
        // The paper's Q/U experiments: t=4 → n=21, q=17.
        assert_eq!(MajorityKind::FourFifths.universe_size(4), 21);
        assert_eq!(MajorityKind::FourFifths.quorum_size(4), 17);
    }

    #[test]
    fn quorums_always_pairwise_intersect_by_counting() {
        // 2q > n for every kind and t (the counting argument).
        for kind in MajorityKind::ALL {
            for t in 1..20 {
                assert!(2 * kind.quorum_size(t) > kind.universe_size(t));
            }
        }
    }

    #[test]
    fn max_t_for_universe() {
        assert_eq!(
            MajorityKind::SimpleMajority.max_t_for_universe(50),
            Some(24)
        );
        assert_eq!(MajorityKind::TwoThirds.max_t_for_universe(50), Some(16));
        assert_eq!(MajorityKind::FourFifths.max_t_for_universe(50), Some(9));
        assert_eq!(MajorityKind::FourFifths.max_t_for_universe(5), None);
        assert_eq!(MajorityKind::SimpleMajority.max_t_for_universe(0), None);
    }

    #[test]
    fn display_names() {
        assert_eq!(
            MajorityKind::SimpleMajority.to_string(),
            "(t+1, 2t+1) Majority"
        );
    }
}
