//! Error types for quorum-system construction.

use std::error::Error;
use std::fmt;

/// Errors from building quorum systems or access strategies.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum QuorumError {
    /// A construction parameter was invalid (e.g. `t = 0` or `k = 0`).
    InvalidParameter {
        /// Which parameter.
        name: &'static str,
        /// Explanation of the requirement.
        requirement: &'static str,
    },
    /// Full enumeration would exceed the caller-supplied limit.
    TooManyQuorums {
        /// Number of quorums the system has (saturating).
        count: u128,
        /// The limit that was exceeded.
        limit: usize,
    },
    /// An explicit system failed validation.
    InvalidSystem {
        /// Explanation of the defect.
        reason: String,
    },
    /// A strategy row was not a probability distribution.
    InvalidDistribution {
        /// Index of the offending client row.
        client: usize,
        /// Sum of the row (should be 1).
        sum: f64,
    },
    /// A strategy matrix had the wrong shape for the quorum list.
    ShapeMismatch {
        /// Expected number of columns (quorums).
        expected: usize,
        /// Actual number of columns.
        actual: usize,
    },
}

impl fmt::Display for QuorumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuorumError::InvalidParameter { name, requirement } => {
                write!(f, "invalid parameter {name}: {requirement}")
            }
            QuorumError::TooManyQuorums { count, limit } => {
                write!(f, "system has {count} quorums, exceeding the limit {limit}")
            }
            QuorumError::InvalidSystem { reason } => {
                write!(f, "invalid quorum system: {reason}")
            }
            QuorumError::InvalidDistribution { client, sum } => {
                write!(f, "strategy row {client} sums to {sum}, not 1")
            }
            QuorumError::ShapeMismatch { expected, actual } => {
                write!(
                    f,
                    "strategy has {actual} columns but {expected} quorums exist"
                )
            }
        }
    }
}

impl Error for QuorumError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_specifics() {
        let e = QuorumError::TooManyQuorums {
            count: 5985,
            limit: 100,
        };
        assert!(e.to_string().contains("5985"));
    }

    #[test]
    fn is_error() {
        fn check<E: Error + Send + Sync + 'static>() {}
        check::<QuorumError>();
    }
}
