//! Access strategies: per-client distributions over an enumerated quorum
//! list, and the element loads they induce.

use crate::{Quorum, QuorumError};

/// A matrix of access strategies: one probability distribution over the
/// quorums `Q₁ … Q_m` per client (§4, "Load": `p_v`).
///
/// The matrix is tied to a specific *enumerated* quorum list by column
/// count; the list itself is passed to the methods that need set structure.
///
/// # Examples
///
/// ```
/// use qp_quorum::{QuorumSystem, StrategyMatrix};
///
/// let grid = QuorumSystem::grid(2)?;
/// let quorums = grid.enumerate(16)?;
/// // Three clients, all accessing uniformly ("balanced").
/// let s = StrategyMatrix::uniform(3, quorums.len());
/// let loads = s.element_loads(&quorums, grid.universe_size());
/// // Every grid element is in 2k−1 = 3 of the 4 quorums → load 3/4.
/// assert!(loads.iter().all(|&l| (l - 0.75).abs() < 1e-12));
/// # Ok::<(), qp_quorum::QuorumError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StrategyMatrix {
    num_quorums: usize,
    rows: Vec<Vec<f64>>,
}

impl StrategyMatrix {
    /// The *balanced* strategy: every client samples uniformly from all
    /// `num_quorums` quorums.
    ///
    /// # Panics
    ///
    /// Panics if `num_quorums == 0`.
    pub fn uniform(num_clients: usize, num_quorums: usize) -> Self {
        assert!(num_quorums > 0, "cannot build a strategy over zero quorums");
        let p = 1.0 / num_quorums as f64;
        StrategyMatrix {
            num_quorums,
            rows: vec![vec![p; num_quorums]; num_clients],
        }
    }

    /// A deterministic strategy: client `v` always accesses quorum
    /// `choice[v]` (e.g. the *closest* strategy of §6).
    ///
    /// # Panics
    ///
    /// Panics if any choice index is out of range or `num_quorums == 0`.
    pub fn deterministic(choices: &[usize], num_quorums: usize) -> Self {
        assert!(num_quorums > 0, "cannot build a strategy over zero quorums");
        let rows = choices
            .iter()
            .map(|&c| {
                assert!(c < num_quorums, "quorum choice {c} out of range");
                let mut row = vec![0.0; num_quorums];
                row[c] = 1.0;
                row
            })
            .collect();
        StrategyMatrix { num_quorums, rows }
    }

    /// Builds a strategy from explicit probability rows.
    ///
    /// # Errors
    ///
    /// * [`QuorumError::ShapeMismatch`] if rows have differing lengths.
    /// * [`QuorumError::InvalidDistribution`] if a row has a negative entry
    ///   or does not sum to 1 within `1e-6`.
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Result<Self, QuorumError> {
        let num_quorums = rows.first().map_or(0, Vec::len);
        for (v, row) in rows.iter().enumerate() {
            if row.len() != num_quorums {
                return Err(QuorumError::ShapeMismatch {
                    expected: num_quorums,
                    actual: row.len(),
                });
            }
            let sum: f64 = row.iter().sum();
            if row.iter().any(|&p| p.is_nan() || p < -1e-9) || (sum - 1.0).abs() > 1e-6 {
                return Err(QuorumError::InvalidDistribution { client: v, sum });
            }
        }
        Ok(StrategyMatrix { num_quorums, rows })
    }

    /// Number of clients (rows).
    pub fn num_clients(&self) -> usize {
        self.rows.len()
    }

    /// Number of quorums (columns).
    pub fn num_quorums(&self) -> usize {
        self.num_quorums
    }

    /// The probability that client `v` accesses quorum `i`.
    ///
    /// # Panics
    ///
    /// Panics if `v` or `i` is out of range.
    pub fn prob(&self, v: usize, i: usize) -> f64 {
        assert!(i < self.num_quorums, "quorum index out of range");
        self.rows[v][i]
    }

    /// The full distribution of client `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn row(&self, v: usize) -> &[f64] {
        &self.rows[v]
    }

    /// The average strategy `p(Q) = avg_v p_v(Q)` (used by the iterative
    /// algorithm of §4.2).
    ///
    /// # Panics
    ///
    /// Panics if there are no clients.
    pub fn average(&self) -> Vec<f64> {
        assert!(!self.rows.is_empty(), "no clients");
        let mut avg = vec![0.0; self.num_quorums];
        for row in &self.rows {
            for (a, p) in avg.iter_mut().zip(row) {
                *a += p;
            }
        }
        let inv = 1.0 / self.rows.len() as f64;
        for a in &mut avg {
            *a *= inv;
        }
        avg
    }

    /// Per-element loads induced by client `v`:
    /// `load_v(u) = Σ_{Q ∋ u} p_v(Q)`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range or `quorums.len()` mismatches the
    /// matrix.
    pub fn client_element_loads(&self, v: usize, quorums: &[Quorum], universe: usize) -> Vec<f64> {
        assert_eq!(quorums.len(), self.num_quorums, "quorum list mismatch");
        let mut load = vec![0.0; universe];
        for (q, &p) in quorums.iter().zip(&self.rows[v]) {
            if p > 0.0 {
                for u in q.iter() {
                    load[u.index()] += p;
                }
            }
        }
        load
    }

    /// Per-element loads averaged over all clients:
    /// `load(u) = avg_v load_v(u)`.
    ///
    /// # Panics
    ///
    /// Panics if there are no clients or `quorums.len()` mismatches the
    /// matrix.
    pub fn element_loads(&self, quorums: &[Quorum], universe: usize) -> Vec<f64> {
        assert!(!self.rows.is_empty(), "no clients");
        assert_eq!(quorums.len(), self.num_quorums, "quorum list mismatch");
        let mut load = vec![0.0; universe];
        for row in &self.rows {
            for (q, &p) in quorums.iter().zip(row) {
                if p > 0.0 {
                    for u in q.iter() {
                        load[u.index()] += p;
                    }
                }
            }
        }
        let inv = 1.0 / self.rows.len() as f64;
        for l in &mut load {
            *l *= inv;
        }
        load
    }

    /// System load of this strategy: the maximum element load.
    ///
    /// # Panics
    ///
    /// As for [`StrategyMatrix::element_loads`].
    pub fn system_load(&self, quorums: &[Quorum], universe: usize) -> f64 {
        self.element_loads(quorums, universe)
            .into_iter()
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ElementId, QuorumSystem};

    fn grid2() -> (QuorumSystem, Vec<Quorum>) {
        let g = QuorumSystem::grid(2).unwrap();
        let qs = g.enumerate(16).unwrap();
        (g, qs)
    }

    #[test]
    fn uniform_rows_sum_to_one() {
        let s = StrategyMatrix::uniform(4, 5);
        for v in 0..4 {
            let sum: f64 = s.row(v).iter().sum();
            assert!((sum - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn deterministic_is_indicator() {
        let s = StrategyMatrix::deterministic(&[2, 0], 3);
        assert_eq!(s.prob(0, 2), 1.0);
        assert_eq!(s.prob(0, 0), 0.0);
        assert_eq!(s.prob(1, 0), 1.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn deterministic_checks_range() {
        let _ = StrategyMatrix::deterministic(&[3], 3);
    }

    #[test]
    fn from_rows_validates() {
        assert!(StrategyMatrix::from_rows(vec![vec![0.5, 0.5], vec![1.0]]).is_err());
        assert!(StrategyMatrix::from_rows(vec![vec![0.7, 0.7]]).is_err());
        assert!(StrategyMatrix::from_rows(vec![vec![-0.2, 1.2]]).is_err());
        assert!(StrategyMatrix::from_rows(vec![vec![0.25; 4]]).is_ok());
    }

    #[test]
    fn element_loads_grid_uniform() {
        let (g, qs) = grid2();
        let s = StrategyMatrix::uniform(3, qs.len());
        let loads = s.element_loads(&qs, g.universe_size());
        // Each element appears in 2k−1 = 3 of 4 quorums.
        for l in loads {
            assert!((l - 0.75).abs() < 1e-12);
        }
        assert!((s.system_load(&qs, g.universe_size()) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn client_loads_deterministic() {
        let (g, qs) = grid2();
        // Client always uses quorum 0 = row 0 ∪ col 0 = {0,1,2}.
        let s = StrategyMatrix::deterministic(&[0], qs.len());
        let loads = s.client_element_loads(0, &qs, g.universe_size());
        assert_eq!(loads, vec![1.0, 1.0, 1.0, 0.0]);
        let _ = ElementId::new(0);
    }

    #[test]
    fn average_strategy() {
        let s = StrategyMatrix::from_rows(vec![vec![1.0, 0.0], vec![0.0, 1.0]]).unwrap();
        assert_eq!(s.average(), vec![0.5, 0.5]);
    }
}
