//! Quorum-system constructions.

#![allow(clippy::needless_range_loop)] // index loops mirror the matrix math
use std::fmt;

use rand::Rng;

use crate::{ElementId, MajorityKind, Quorum, QuorumError};

/// A quorum system over a universe of `n` logical elements.
///
/// Three constructions are available: [`QuorumSystem::majority`],
/// [`QuorumSystem::grid`], and [`QuorumSystem::explicit`]. Structured
/// constructions (Majority, Grid) answer structural queries — closest
/// quorum, optimal load, uniform sampling — in closed form without
/// enumerating the (possibly astronomically many) quorums; explicit systems
/// fall back to scans over the stored list.
///
/// # Examples
///
/// ```
/// use qp_quorum::{MajorityKind, QuorumSystem};
///
/// // The paper's Q/U configuration at t = 2: n = 11, q = 9.
/// let qs = QuorumSystem::majority(MajorityKind::FourFifths, 2)?;
/// assert_eq!(qs.universe_size(), 11);
/// assert_eq!(qs.min_quorum_size(), 9);
/// assert_eq!(qs.optimal_load(), Some(9.0 / 11.0));
/// # Ok::<(), qp_quorum::QuorumError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QuorumSystem {
    inner: Inner,
}

#[derive(Debug, Clone, PartialEq)]
enum Inner {
    Majority {
        kind: MajorityKind,
        t: usize,
    },
    Grid {
        k: usize,
    },
    Explicit {
        universe: usize,
        quorums: Vec<Quorum>,
        label: String,
    },
}

impl QuorumSystem {
    /// A Majority system with fault threshold `t ≥ 1`.
    ///
    /// Its quorums are **all** subsets of size exactly `q = kind.quorum_size(t)`
    /// out of `n = kind.universe_size(t)` elements.
    ///
    /// # Errors
    ///
    /// [`QuorumError::InvalidParameter`] if `t = 0`.
    pub fn majority(kind: MajorityKind, t: usize) -> Result<Self, QuorumError> {
        if t == 0 {
            return Err(QuorumError::InvalidParameter {
                name: "t",
                requirement: "fault threshold must be at least 1",
            });
        }
        Ok(QuorumSystem {
            inner: Inner::Majority { kind, t },
        })
    }

    /// The `k × k` Grid system (`k ≥ 1`): universe `n = k²` arranged in a
    /// square; quorum `Q_{i,j}` = row `i` ∪ column `j`, so `m = k²` quorums
    /// of size `2k − 1`. Any two quorums intersect: `Q_{i,j}` and
    /// `Q_{i',j'}` share the cell `(i, j')` (and `(i', j)`).
    ///
    /// # Errors
    ///
    /// [`QuorumError::InvalidParameter`] if `k = 0`.
    pub fn grid(k: usize) -> Result<Self, QuorumError> {
        if k == 0 {
            return Err(QuorumError::InvalidParameter {
                name: "k",
                requirement: "grid side must be at least 1",
            });
        }
        Ok(QuorumSystem {
            inner: Inner::Grid { k },
        })
    }

    /// An explicit system from a list of quorums.
    ///
    /// # Errors
    ///
    /// [`QuorumError::InvalidSystem`] if the list is empty, a quorum is
    /// empty, an element is out of range, or two quorums fail to intersect.
    pub fn explicit(
        universe: usize,
        quorums: Vec<Quorum>,
        label: &str,
    ) -> Result<Self, QuorumError> {
        if quorums.is_empty() {
            return Err(QuorumError::InvalidSystem {
                reason: "no quorums supplied".to_string(),
            });
        }
        for q in &quorums {
            if q.is_empty() {
                return Err(QuorumError::InvalidSystem {
                    reason: "empty quorum".to_string(),
                });
            }
            if let Some(u) = q.iter().find(|u| u.index() >= universe) {
                return Err(QuorumError::InvalidSystem {
                    reason: format!("element {u} out of universe of size {universe}"),
                });
            }
        }
        if !Self::verify_intersection(&quorums) {
            return Err(QuorumError::InvalidSystem {
                reason: "two quorums do not intersect".to_string(),
            });
        }
        Ok(QuorumSystem {
            inner: Inner::Explicit {
                universe,
                quorums,
                label: label.to_string(),
            },
        })
    }

    /// Checks the defining property: every pair of quorums intersects.
    pub fn verify_intersection(quorums: &[Quorum]) -> bool {
        for (i, a) in quorums.iter().enumerate() {
            for b in &quorums[i + 1..] {
                if !a.intersects(b) {
                    return false;
                }
            }
        }
        true
    }

    /// Size `n` of the universe.
    pub fn universe_size(&self) -> usize {
        match &self.inner {
            Inner::Majority { kind, t } => kind.universe_size(*t),
            Inner::Grid { k } => k * k,
            Inner::Explicit { universe, .. } => *universe,
        }
    }

    /// Size of the smallest quorum.
    pub fn min_quorum_size(&self) -> usize {
        match &self.inner {
            Inner::Majority { kind, t } => kind.quorum_size(*t),
            Inner::Grid { k } => 2 * k - 1,
            Inner::Explicit { quorums, .. } => quorums.iter().map(Quorum::len).min().unwrap_or(0),
        }
    }

    /// Total number of quorums (saturating; Majorities have `C(n, q)`).
    pub fn quorum_count(&self) -> u128 {
        match &self.inner {
            Inner::Majority { kind, t } => binomial(kind.universe_size(*t), kind.quorum_size(*t)),
            Inner::Grid { k } => (k * k) as u128,
            Inner::Explicit { quorums, .. } => quorums.len() as u128,
        }
    }

    /// A short human-readable label ("(t+1, 2t+1) Majority, t=3", "5x5
    /// Grid", …).
    pub fn label(&self) -> String {
        match &self.inner {
            Inner::Majority { kind, t } => format!("{kind}, t={t}"),
            Inner::Grid { k } => format!("{k}x{k} Grid"),
            Inner::Explicit { label, .. } => label.clone(),
        }
    }

    /// Whether `candidate` contains a quorum of this system.
    pub fn is_quorum(&self, candidate: &Quorum) -> bool {
        match &self.inner {
            Inner::Majority { kind, t } => candidate.len() >= kind.quorum_size(*t),
            Inner::Grid { k } => {
                let k = *k;
                let mut row_count = vec![0usize; k];
                let mut col_count = vec![0usize; k];
                for u in candidate.iter() {
                    if u.index() < k * k {
                        row_count[u.index() / k] += 1;
                        col_count[u.index() % k] += 1;
                    }
                }
                // Need a full row i and a full column j; the shared cell
                // (i, j) is counted in both tallies, so full row + full
                // column of the candidate suffices.
                let full_rows: Vec<usize> = (0..k).filter(|&i| row_count[i] == k).collect();
                let full_cols: Vec<usize> = (0..k).filter(|&j| col_count[j] == k).collect();
                !full_rows.is_empty() && !full_cols.is_empty()
            }
            Inner::Explicit { quorums, .. } => quorums.iter().any(|q| q.is_subset_of(candidate)),
        }
    }

    /// Enumerates all quorums, provided there are at most `limit`.
    ///
    /// # Errors
    ///
    /// [`QuorumError::TooManyQuorums`] if the count exceeds `limit` —
    /// Majorities blow up combinatorially; use [`QuorumSystem::rotation_family`]
    /// or structural queries instead.
    pub fn enumerate(&self, limit: usize) -> Result<Vec<Quorum>, QuorumError> {
        let count = self.quorum_count();
        if count > limit as u128 {
            return Err(QuorumError::TooManyQuorums { count, limit });
        }
        Ok(match &self.inner {
            Inner::Majority { kind, t } => {
                let n = kind.universe_size(*t);
                let q = kind.quorum_size(*t);
                let mut out = Vec::new();
                let mut choice: Vec<usize> = (0..q).collect();
                loop {
                    out.push(choice.iter().map(|&i| ElementId::new(i)).collect());
                    // Next combination.
                    let mut i = q;
                    loop {
                        if i == 0 {
                            return Ok(out);
                        }
                        i -= 1;
                        if choice[i] != i + n - q {
                            choice[i] += 1;
                            for k2 in (i + 1)..q {
                                choice[k2] = choice[k2 - 1] + 1;
                            }
                            break;
                        }
                    }
                }
            }
            Inner::Grid { k } => grid_quorums(*k),
            Inner::Explicit { quorums, .. } => quorums.clone(),
        })
    }

    /// For Majorities: the *rotation family* — the `n` cyclic windows
    /// `{i, i+1, …, i+q−1 mod n}`. A subfamily of the full Majority (so
    /// intersection still holds, since any two `q`-sets with `2q > n`
    /// intersect), with the useful property that the uniform strategy over
    /// it induces load exactly `q/n = L_opt` on every element.
    ///
    /// Returns `None` for non-Majority systems.
    pub fn rotation_family(&self) -> Option<Vec<Quorum>> {
        let Inner::Majority { kind, t } = &self.inner else {
            return None;
        };
        let n = kind.universe_size(*t);
        let q = kind.quorum_size(*t);
        Some(
            (0..n)
                .map(|start| {
                    (0..q)
                        .map(|off| ElementId::new((start + off) % n))
                        .collect()
                })
                .collect(),
        )
    }

    /// The quorum minimizing the **maximum** of `elem_cost[u]` over its
    /// elements — i.e. the closest quorum when `elem_cost[u]` is the
    /// client's delay to the node hosting `u` (§6, "closest quorum access
    /// strategy"). Computed structurally: `O(n log n)` for Majorities,
    /// `O(k²)` for Grids, one scan for explicit systems.
    ///
    /// Ties are broken deterministically (lowest element indices / lowest
    /// row-column / first in list).
    ///
    /// # Panics
    ///
    /// Panics if `elem_cost.len() != self.universe_size()` or any cost is
    /// NaN.
    pub fn min_max_quorum(&self, elem_cost: &[f64]) -> Quorum {
        assert_eq!(
            elem_cost.len(),
            self.universe_size(),
            "one cost per universe element required"
        );
        assert!(elem_cost.iter().all(|c| !c.is_nan()), "NaN cost");
        match &self.inner {
            Inner::Majority { kind, t } => {
                let q = kind.quorum_size(*t);
                let mut order: Vec<usize> = (0..elem_cost.len()).collect();
                order.sort_by(|&a, &b| {
                    elem_cost[a]
                        .partial_cmp(&elem_cost[b])
                        .expect("no NaN")
                        .then_with(|| a.cmp(&b))
                });
                order[..q].iter().map(|&i| ElementId::new(i)).collect()
            }
            Inner::Grid { k } => {
                let k = *k;
                let row_max: Vec<f64> = (0..k)
                    .map(|i| {
                        (0..k)
                            .map(|j| elem_cost[i * k + j])
                            .fold(f64::MIN, f64::max)
                    })
                    .collect();
                let col_max: Vec<f64> = (0..k)
                    .map(|j| {
                        (0..k)
                            .map(|i| elem_cost[i * k + j])
                            .fold(f64::MIN, f64::max)
                    })
                    .collect();
                let mut best = (0, 0);
                let mut best_cost = f64::INFINITY;
                for i in 0..k {
                    for j in 0..k {
                        let c = row_max[i].max(col_max[j]);
                        if c < best_cost {
                            best_cost = c;
                            best = (i, j);
                        }
                    }
                }
                grid_quorum(k, best.0, best.1)
            }
            Inner::Explicit { quorums, .. } => {
                let mut best = &quorums[0];
                let mut best_cost = f64::INFINITY;
                for q in quorums {
                    let c = q
                        .iter()
                        .map(|u| elem_cost[u.index()])
                        .fold(f64::MIN, f64::max);
                    if c < best_cost {
                        best_cost = c;
                        best = q;
                    }
                }
                best.clone()
            }
        }
    }

    /// Samples a quorum uniformly at random (the *balanced* strategy of
    /// §7): a uniform `q`-subset for Majorities, a uniform `(row, column)`
    /// pair for Grids, a uniform list entry for explicit systems.
    pub fn sample_uniform<R: Rng + ?Sized>(&self, rng: &mut R) -> Quorum {
        match &self.inner {
            Inner::Majority { kind, t } => {
                let n = kind.universe_size(*t);
                let q = kind.quorum_size(*t);
                // Partial Fisher–Yates.
                let mut pool: Vec<usize> = (0..n).collect();
                for i in 0..q {
                    let j = rng.gen_range(i..n);
                    pool.swap(i, j);
                }
                pool[..q].iter().map(|&i| ElementId::new(i)).collect()
            }
            Inner::Grid { k } => {
                let i = rng.gen_range(0..*k);
                let j = rng.gen_range(0..*k);
                grid_quorum(*k, i, j)
            }
            Inner::Explicit { quorums, .. } => quorums[rng.gen_range(0..quorums.len())].clone(),
        }
    }

    /// The system's optimal load `L_opt` (Naor–Wool), if known in closed
    /// form:
    ///
    /// * Majority `(q of n)`: `q / n` (by symmetry, achieved by the uniform
    ///   strategy);
    /// * `k × k` Grid: `(2k − 1) / k²` (the uniform strategy achieves the
    ///   `q_min / n` lower bound);
    /// * explicit systems: `None` (use an LP, e.g.
    ///   `qp_core::optimal_load_lp`).
    pub fn optimal_load(&self) -> Option<f64> {
        match &self.inner {
            Inner::Majority { kind, t } => {
                Some(kind.quorum_size(*t) as f64 / kind.universe_size(*t) as f64)
            }
            Inner::Grid { k } => {
                let k = *k;
                Some((2 * k - 1) as f64 / (k * k) as f64)
            }
            Inner::Explicit { .. } => None,
        }
    }

    /// The Majority parameters `(kind, t)` if this is a Majority system.
    pub fn as_majority(&self) -> Option<(MajorityKind, usize)> {
        match &self.inner {
            Inner::Majority { kind, t } => Some((*kind, *t)),
            _ => None,
        }
    }

    /// The grid side `k` if this is a Grid system.
    pub fn as_grid(&self) -> Option<usize> {
        match &self.inner {
            Inner::Grid { k } => Some(*k),
            _ => None,
        }
    }
}

impl fmt::Display for QuorumSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Quorum `Q_{i,j}` of the `k × k` grid: row `i` ∪ column `j`.
fn grid_quorum(k: usize, i: usize, j: usize) -> Quorum {
    let mut elems: Vec<ElementId> = (0..k).map(|c| ElementId::new(i * k + c)).collect();
    elems.extend((0..k).map(|r| ElementId::new(r * k + j)));
    Quorum::new(elems)
}

/// All `k²` grid quorums, row-major order.
fn grid_quorums(k: usize) -> Vec<Quorum> {
    let mut out = Vec::with_capacity(k * k);
    for i in 0..k {
        for j in 0..k {
            out.push(grid_quorum(k, i, j));
        }
    }
    out
}

/// Saturating binomial coefficient `C(n, k)` as `u128`.
fn binomial(n: usize, k: usize) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = acc.saturating_mul((n - i) as u128);
        acc /= (i + 1) as u128;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn binomial_values() {
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(21, 17), 5985);
        assert_eq!(binomial(4, 0), 1);
        assert_eq!(binomial(3, 5), 0);
    }

    #[test]
    fn majority_rejects_t_zero() {
        assert!(QuorumSystem::majority(MajorityKind::TwoThirds, 0).is_err());
    }

    #[test]
    fn grid_enumeration_intersects() {
        for k in 1..=5 {
            let g = QuorumSystem::grid(k).unwrap();
            let qs = g.enumerate(usize::MAX).unwrap();
            assert_eq!(qs.len(), k * k);
            assert!(QuorumSystem::verify_intersection(&qs));
            for q in &qs {
                assert_eq!(q.len(), 2 * k - 1);
                assert!(g.is_quorum(q));
            }
        }
    }

    #[test]
    fn majority_enumeration_small() {
        let m = QuorumSystem::majority(MajorityKind::SimpleMajority, 2).unwrap();
        // n=5, q=3 → C(5,3) = 10 quorums.
        let qs = m.enumerate(100).unwrap();
        assert_eq!(qs.len(), 10);
        assert!(QuorumSystem::verify_intersection(&qs));
    }

    #[test]
    fn majority_enumeration_respects_limit() {
        let m = QuorumSystem::majority(MajorityKind::FourFifths, 4).unwrap();
        // C(21,17) = 5985.
        let err = m.enumerate(1000).unwrap_err();
        assert!(matches!(
            err,
            QuorumError::TooManyQuorums { count: 5985, .. }
        ));
    }

    #[test]
    fn rotation_family_properties() {
        let m = QuorumSystem::majority(MajorityKind::TwoThirds, 3).unwrap();
        let rot = m.rotation_family().unwrap();
        let (n, q) = (10, 7);
        assert_eq!(rot.len(), n);
        assert!(QuorumSystem::verify_intersection(&rot));
        // Uniform over rotations puts load q/n on every element.
        let mut counts = vec![0usize; n];
        for quo in &rot {
            assert_eq!(quo.len(), q);
            for u in quo.iter() {
                counts[u.index()] += 1;
            }
        }
        assert!(counts.iter().all(|&c| c == q));
        // Grid has no rotation family.
        assert!(QuorumSystem::grid(3).unwrap().rotation_family().is_none());
    }

    #[test]
    fn min_max_quorum_majority_takes_nearest() {
        let m = QuorumSystem::majority(MajorityKind::SimpleMajority, 1).unwrap();
        // n=3, q=2; costs favour elements 2 and 0.
        let q = m.min_max_quorum(&[1.0, 9.0, 0.5]);
        let ids: Vec<usize> = q.iter().map(ElementId::index).collect();
        assert_eq!(ids, vec![0, 2]);
    }

    #[test]
    fn min_max_quorum_grid_matches_bruteforce() {
        let g = QuorumSystem::grid(3).unwrap();
        let costs = [5.0, 1.0, 8.0, 2.0, 2.0, 2.0, 9.0, 1.0, 3.0];
        let fast = g.min_max_quorum(&costs);
        // Brute force over the enumeration.
        let mut best = None;
        let mut best_cost = f64::INFINITY;
        for q in g.enumerate(usize::MAX).unwrap() {
            let c = q.iter().map(|u| costs[u.index()]).fold(f64::MIN, f64::max);
            if c < best_cost {
                best_cost = c;
                best = Some(q);
            }
        }
        let brute_cost = best
            .unwrap()
            .iter()
            .map(|u| costs[u.index()])
            .fold(f64::MIN, f64::max);
        let fast_cost = fast
            .iter()
            .map(|u| costs[u.index()])
            .fold(f64::MIN, f64::max);
        assert_eq!(fast_cost, brute_cost);
    }

    #[test]
    fn sample_uniform_is_a_quorum() {
        let mut rng = StdRng::seed_from_u64(1);
        for sys in [
            QuorumSystem::majority(MajorityKind::FourFifths, 2).unwrap(),
            QuorumSystem::grid(4).unwrap(),
        ] {
            for _ in 0..50 {
                let q = sys.sample_uniform(&mut rng);
                assert!(sys.is_quorum(&q), "{q} not a quorum of {sys}");
                assert_eq!(q.len(), sys.min_quorum_size());
            }
        }
    }

    #[test]
    fn explicit_validation() {
        let q1 = Quorum::new(vec![ElementId::new(0), ElementId::new(1)]);
        let q2 = Quorum::new(vec![ElementId::new(2)]);
        // Disjoint → invalid.
        assert!(QuorumSystem::explicit(3, vec![q1.clone(), q2], "bad").is_err());
        // Out of range → invalid.
        assert!(QuorumSystem::explicit(1, vec![q1.clone()], "bad").is_err());
        // Valid singleton-style system.
        let ok = QuorumSystem::explicit(2, vec![q1], "ok").unwrap();
        assert_eq!(ok.universe_size(), 2);
        assert_eq!(ok.quorum_count(), 1);
        assert_eq!(ok.optimal_load(), None);
    }

    #[test]
    fn grid_is_quorum_needs_full_row_and_column() {
        let g = QuorumSystem::grid(2).unwrap();
        // {0,1} is a row but no column.
        let row_only = Quorum::new(vec![ElementId::new(0), ElementId::new(1)]);
        assert!(!g.is_quorum(&row_only));
        // {0,1,2} = row 0 + column 0.
        let q = Quorum::new(vec![
            ElementId::new(0),
            ElementId::new(1),
            ElementId::new(2),
        ]);
        assert!(g.is_quorum(&q));
    }

    #[test]
    fn optimal_loads() {
        let g = QuorumSystem::grid(5).unwrap();
        assert_eq!(g.optimal_load(), Some(9.0 / 25.0));
        let m = QuorumSystem::majority(MajorityKind::SimpleMajority, 5).unwrap();
        assert_eq!(m.optimal_load(), Some(6.0 / 11.0));
    }

    #[test]
    fn labels() {
        assert_eq!(QuorumSystem::grid(5).unwrap().label(), "5x5 Grid");
        assert!(QuorumSystem::majority(MajorityKind::TwoThirds, 2)
            .unwrap()
            .label()
            .contains("t=2"));
    }
}
