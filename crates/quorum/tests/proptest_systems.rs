//! Property tests: the quorum intersection invariant and strategy/load
//! algebra across randomly chosen system parameters.

use proptest::prelude::*;
use qp_quorum::{ElementId, MajorityKind, Quorum, QuorumSystem, StrategyMatrix};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn any_kind() -> impl Strategy<Value = MajorityKind> {
    prop_oneof![
        Just(MajorityKind::SimpleMajority),
        Just(MajorityKind::TwoThirds),
        Just(MajorityKind::FourFifths),
    ]
}

proptest! {
    #[test]
    fn majority_rotations_intersect_and_balance(kind in any_kind(), t in 1usize..8) {
        let sys = QuorumSystem::majority(kind, t).unwrap();
        let rot = sys.rotation_family().unwrap();
        prop_assert!(QuorumSystem::verify_intersection(&rot));
        // Uniform over rotations loads every element exactly q/n = L_opt.
        let s = StrategyMatrix::uniform(1, rot.len());
        let loads = s.element_loads(&rot, sys.universe_size());
        let lopt = sys.optimal_load().unwrap();
        for l in loads {
            prop_assert!((l - lopt).abs() < 1e-9);
        }
    }

    #[test]
    fn grid_quorums_intersect(k in 1usize..8) {
        let sys = QuorumSystem::grid(k).unwrap();
        let qs = sys.enumerate(usize::MAX).unwrap();
        prop_assert_eq!(qs.len(), k * k);
        prop_assert!(QuorumSystem::verify_intersection(&qs));
        for q in &qs {
            prop_assert_eq!(q.len(), 2 * k - 1);
        }
    }

    #[test]
    fn small_majority_full_enumeration_intersects(kind in any_kind(), t in 1usize..3) {
        let sys = QuorumSystem::majority(kind, t).unwrap();
        if let Ok(qs) = sys.enumerate(20_000) {
            prop_assert_eq!(qs.len() as u128, sys.quorum_count());
            prop_assert!(QuorumSystem::verify_intersection(&qs));
        }
    }

    #[test]
    fn min_max_quorum_is_optimal_for_grid(
        k in 2usize..5,
        seed in 0u64..1000,
    ) {
        use rand::Rng;
        let sys = QuorumSystem::grid(k).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let costs: Vec<f64> = (0..k * k).map(|_| rng.gen_range(0.0..100.0)).collect();
        let fast = sys.min_max_quorum(&costs);
        let fast_cost = fast.iter().map(|u| costs[u.index()]).fold(f64::MIN, f64::max);
        for q in sys.enumerate(usize::MAX).unwrap() {
            let c = q.iter().map(|u| costs[u.index()]).fold(f64::MIN, f64::max);
            prop_assert!(fast_cost <= c + 1e-12);
        }
    }

    #[test]
    fn min_max_quorum_is_optimal_for_majority(
        t in 1usize..3,
        kind in any_kind(),
        seed in 0u64..1000,
    ) {
        use rand::Rng;
        let sys = QuorumSystem::majority(kind, t).unwrap();
        let n = sys.universe_size();
        let mut rng = StdRng::seed_from_u64(seed);
        let costs: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..100.0)).collect();
        let fast = sys.min_max_quorum(&costs);
        let fast_cost = fast.iter().map(|u| costs[u.index()]).fold(f64::MIN, f64::max);
        if let Ok(all) = sys.enumerate(20_000) {
            for q in all {
                let c = q.iter().map(|u| costs[u.index()]).fold(f64::MIN, f64::max);
                prop_assert!(fast_cost <= c + 1e-12);
            }
        }
    }

    #[test]
    fn sampled_quorums_are_quorums(kind in any_kind(), t in 1usize..6, seed in 0u64..500) {
        let sys = QuorumSystem::majority(kind, t).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let q = sys.sample_uniform(&mut rng);
        prop_assert!(sys.is_quorum(&q));
        prop_assert_eq!(q.len(), sys.min_quorum_size());
    }

    #[test]
    fn strategy_loads_are_bounded_by_one(k in 1usize..5, clients in 1usize..6) {
        let sys = QuorumSystem::grid(k).unwrap();
        let qs = sys.enumerate(usize::MAX).unwrap();
        let s = StrategyMatrix::uniform(clients, qs.len());
        let loads = s.element_loads(&qs, sys.universe_size());
        for l in loads {
            prop_assert!((0.0..=1.0 + 1e-12).contains(&l));
        }
    }

    #[test]
    fn explicit_roundtrip(k in 1usize..5) {
        let sys = QuorumSystem::grid(k).unwrap();
        let qs = sys.enumerate(usize::MAX).unwrap();
        let exp = QuorumSystem::explicit(sys.universe_size(), qs.clone(), "copy").unwrap();
        prop_assert_eq!(exp.enumerate(usize::MAX).unwrap(), qs);
        prop_assert_eq!(exp.min_quorum_size(), sys.min_quorum_size());
    }
}

#[test]
fn two_disjoint_sets_rejected() {
    let a = Quorum::new(vec![ElementId::new(0)]);
    let b = Quorum::new(vec![ElementId::new(1)]);
    assert!(QuorumSystem::explicit(2, vec![a, b], "bad").is_err());
}
