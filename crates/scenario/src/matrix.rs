//! Checkpointed, resumable scenario matrices with streamed JSONL output.
//!
//! [`ScenarioRunner::run_matrix_checkpointed`] runs a spec matrix like
//! `run_matrix`, but streams one JSON line per *completed* scenario into
//! a checkpoint file (appended and fsync'd as each spec finishes, in
//! completion order). A killed sweep resumes from the checkpoint: specs
//! already recorded are skipped, only the missing ones run. Because the
//! pipeline is bit-deterministic and the encoder is pure, the merged
//! output ([`write_merged_jsonl`], sorted by spec index) is byte-identical
//! whether the matrix ran uninterrupted or was killed and resumed any
//! number of times.
//!
//! The encoding is plain JSON with floats in `{:.17e}` scientific
//! notation — enough digits to round-trip every finite `f64`, and a
//! deterministic rendering for the byte-equality guarantee. A torn final
//! checkpoint line (the writer was killed mid-append) is tolerated and
//! dropped; corruption anywhere else is an error naming the line, since
//! silently skipping a completed spec would quietly re-run it under a
//! checkpoint that no longer matches.
//!
//! Every record also carries a content hash of its [`ScenarioSpec`], and
//! resume rejects a record whose hash no longer matches the submitted
//! spec — editing a spec between runs while keeping its name must re-run
//! it, not silently reuse the stale result.

use std::fs::OpenOptions;
use std::io::Write as _;
use std::path::Path;
use std::sync::Mutex;

use qp_par::ParPool;

use crate::report::ScenarioReport;
use crate::spec::ScenarioSpec;
use crate::{ScenarioError, ScenarioRunner};

/// One matrix slot after a checkpointed run: either freshly executed
/// this invocation or restored from the checkpoint file.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixEntry {
    /// Index of the spec in the submitted matrix.
    pub spec_index: usize,
    /// The scenario's name (validated against the spec on resume).
    pub name: String,
    /// The scenario's cross-check verdict.
    pub pass: bool,
    /// The JSONL record (no trailing newline) — raw from the checkpoint
    /// for resumed entries, freshly encoded for executed ones.
    pub json_line: String,
    /// `true` when the entry was restored from the checkpoint instead of
    /// executed by this invocation.
    pub resumed: bool,
    /// The structured report, for entries executed by this invocation
    /// (`None` for resumed entries — the checkpoint stores the rendered
    /// record, not the struct).
    pub report: Option<ScenarioReport>,
}

impl ScenarioRunner {
    /// Runs a spec matrix with checkpointing: every completed scenario is
    /// appended to `checkpoint` as one fsync'd JSON line, and specs the
    /// checkpoint already records are skipped. Entries return in spec
    /// order.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::Io`] for checkpoint file problems (including
    /// corruption anywhere but a torn final line, and a checkpoint whose
    /// recorded names do not match the submitted specs); scenario
    /// failures propagate like [`ScenarioRunner::run_matrix`] — specs
    /// that completed before the failure remain in the checkpoint, so a
    /// rerun picks up from there.
    pub fn run_matrix_checkpointed(
        &self,
        specs: &[ScenarioSpec],
        checkpoint: &Path,
    ) -> Result<Vec<MatrixEntry>, ScenarioError> {
        let mut slots: Vec<Option<MatrixEntry>> = (0..specs.len()).map(|_| None).collect();
        load_checkpoint(checkpoint, specs, &mut slots)?;

        let missing: Vec<usize> = (0..specs.len()).filter(|&i| slots[i].is_none()).collect();
        if !missing.is_empty() {
            let file = OpenOptions::new()
                .create(true)
                .append(true)
                .open(checkpoint)
                .map_err(|e| io_error(checkpoint, &e))?;
            let sink = Mutex::new(file);
            let results = ParPool::global().run(missing.len(), |j| {
                let i = missing[j];
                let report = self.run(&specs[i])?;
                let line = encode_report(i, &specs[i], &report);
                {
                    let mut f = sink.lock().expect("checkpoint sink poisoned");
                    f.write_all(line.as_bytes())
                        .and_then(|()| f.write_all(b"\n"))
                        .and_then(|()| f.sync_data())
                        .map_err(|e| io_error(checkpoint, &e))?;
                }
                Ok::<_, ScenarioError>((i, report, line))
            });
            for r in results {
                let (i, report, json_line) = r?;
                slots[i] = Some(MatrixEntry {
                    spec_index: i,
                    name: report.name.clone(),
                    pass: report.pass,
                    json_line,
                    resumed: false,
                    report: Some(report),
                });
            }
        }
        Ok(slots
            .into_iter()
            .map(|s| s.expect("every slot resumed or executed"))
            .collect())
    }
}

/// Writes the matrix's merged JSONL (entries in spec order, one line
/// each) to `path` and fsyncs it. Byte-identical across interrupted and
/// uninterrupted runs of the same matrix.
///
/// # Errors
///
/// [`ScenarioError::Io`] on any file-system failure.
pub fn write_merged_jsonl(entries: &[MatrixEntry], path: &Path) -> Result<(), ScenarioError> {
    let mut out = String::new();
    for e in entries {
        out.push_str(&e.json_line);
        out.push('\n');
    }
    let mut f = std::fs::File::create(path).map_err(|e| io_error(path, &e))?;
    f.write_all(out.as_bytes())
        .and_then(|()| f.sync_all())
        .map_err(|e| io_error(path, &e))
}

fn io_error(path: &Path, e: &dyn std::fmt::Display) -> ScenarioError {
    ScenarioError::Io(format!("{}: {e}", path.display()))
}

/// Restores completed entries from the checkpoint file into `slots`.
/// A missing file is an empty checkpoint; a torn final line is dropped.
fn load_checkpoint(
    path: &Path,
    specs: &[ScenarioSpec],
    slots: &mut [Option<MatrixEntry>],
) -> Result<(), ScenarioError> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
        Err(e) => return Err(io_error(path, &e)),
    };
    // A line without its terminating newline was torn by a kill
    // mid-append; the spec it would have recorded simply re-runs.
    let complete = match text.ends_with('\n') {
        true => &text[..],
        false => &text[..text.rfind('\n').map_or(0, |p| p + 1)],
    };
    for (i, line) in complete.lines().enumerate() {
        let lineno = i + 1;
        let corrupt = |why: &str| {
            ScenarioError::Io(format!(
                "{} line {lineno}: {why} (delete the checkpoint to start over)",
                path.display()
            ))
        };
        let (spec_index, escaped_name, hash, pass) =
            scan_line(line).ok_or_else(|| corrupt("unrecognized checkpoint record"))?;
        if spec_index >= specs.len() {
            return Err(corrupt(&format!(
                "records spec {spec_index} but the matrix has {} specs",
                specs.len()
            )));
        }
        if escaped_name != escape_json(&specs[spec_index].name) {
            return Err(corrupt(&format!(
                "records a scenario named \"{escaped_name}\" at index {spec_index}, \
                 but the matrix has `{}` there",
                specs[spec_index].name
            )));
        }
        if hash != spec_hash(&specs[spec_index]) {
            return Err(corrupt(&format!(
                "spec `{}` changed since this checkpoint was written \
                 (content hash {hash} no longer matches)",
                specs[spec_index].name
            )));
        }
        if slots[spec_index].is_some() {
            return Err(corrupt(&format!("duplicate record for spec {spec_index}")));
        }
        slots[spec_index] = Some(MatrixEntry {
            spec_index,
            name: specs[spec_index].name.clone(),
            pass,
            json_line: line.to_string(),
            resumed: true,
            report: None,
        });
    }
    Ok(())
}

/// Extracts `(spec_index, escaped name, spec hash, pass)` from a
/// checkpoint line without a JSON parser: the encoder pins the leading
/// field order to `spec_index`, `name`, `spec_hash`, `pass` exactly so
/// resume can string-scan.
fn scan_line(line: &str) -> Option<(usize, &str, &str, bool)> {
    let rest = line.strip_prefix("{\"spec_index\":")?;
    let comma = rest.find(',')?;
    let spec_index: usize = rest[..comma].parse().ok()?;
    let rest = rest[comma..].strip_prefix(",\"name\":\"")?;
    let mut end = None;
    let mut escaped = false;
    for (i, c) in rest.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' => escaped = true,
            '"' => {
                end = Some(i);
                break;
            }
            _ => {}
        }
    }
    let end = end?;
    let name = &rest[..end];
    let rest = rest[end + 1..].strip_prefix(",\"spec_hash\":\"")?;
    let hash_end = rest.find('"')?;
    let hash = &rest[..hash_end];
    let rest = &rest[hash_end + 1..];
    let pass = if rest.starts_with(",\"pass\":true,") {
        true
    } else if rest.starts_with(",\"pass\":false,") {
        false
    } else {
        return None;
    };
    line.ends_with('}')
        .then_some((spec_index, name, hash, pass))
}

/// Deterministic content hash of a spec (FNV-1a over its debug
/// rendering), stored in each checkpoint record so resume can detect a
/// spec that was edited between runs while keeping its name.
#[must_use]
pub fn spec_hash(spec: &ScenarioSpec) -> String {
    let repr = format!("{spec:?}");
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in repr.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

/// Encodes one scenario's checkpoint/JSONL record (no trailing newline).
/// Deterministic: the same report always renders the same bytes. The
/// first four fields are pinned to `spec_index`, `name`, `spec_hash`,
/// `pass` — the resume scanner depends on that order.
#[must_use]
pub fn encode_report(spec_index: usize, spec: &ScenarioSpec, report: &ScenarioReport) -> String {
    let mut o = String::with_capacity(1024);
    o.push_str("{\"spec_index\":");
    o.push_str(&spec_index.to_string());
    o.push_str(",\"name\":");
    push_str_field(&mut o, &report.name);
    o.push_str(",\"spec_hash\":");
    push_str_field(&mut o, &spec_hash(spec));
    o.push_str(",\"pass\":");
    o.push_str(if report.pass { "true" } else { "false" });
    o.push_str(",\"topology\":");
    push_str_field(&mut o, &report.topology);
    o.push_str(",\"sites\":");
    o.push_str(&report.sites.to_string());
    o.push_str(",\"system\":");
    push_str_field(&mut o, &report.system);
    o.push_str(",\"placement_sites\":[");
    for (i, s) in report.placement_sites.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        push_str_field(&mut o, s);
    }
    o.push_str("],\"locations\":");
    o.push_str(&report.locations.to_string());
    o.push_str(",\"total_clients\":");
    o.push_str(&report.total_clients.to_string());
    o.push_str(",\"capacity\":");
    push_str_field(&mut o, &report.capacity);
    o.push_str(",\"lp_delay_ms\":");
    push_f64(&mut o, report.lp_delay_ms);
    o.push_str(",\"lp_response_ms\":");
    push_f64(&mut o, report.lp_response_ms);
    o.push_str(",\"lp_pivots\":");
    o.push_str(&report.lp_pivots.to_string());
    o.push_str(",\"pricing\":");
    match &report.pricing {
        None => o.push_str("null"),
        Some(p) => {
            o.push_str(&format!(
                "{{\"columns_in_master\":{},\"total_columns\":{},\
                 \"columns_generated\":{},\"oracle_passes\":{},\
                 \"master_resolves\":{}}}",
                p.columns_in_master,
                p.total_columns,
                p.columns_generated,
                p.oracle_passes,
                p.master_resolves
            ));
        }
    }
    o.push_str(",\"tolerance\":");
    push_f64(&mut o, report.tolerance);
    o.push_str(",\"max_rel_error\":");
    push_f64(&mut o, report.max_rel_error);
    o.push_str(",\"phases\":[");
    for (i, p) in report.phases.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        o.push_str("{\"phase\":");
        o.push_str(&p.phase.to_string());
        o.push_str(",\"engine\":");
        push_str_field(
            &mut o,
            match p.engine {
                qp_protocol::SimEngine::Exact => "exact",
                qp_protocol::SimEngine::Aggregated => "aggregated",
            },
        );
        o.push_str(",\"exact_response_ms\":");
        push_opt_f64(&mut o, p.exact_response_ms);
        o.push_str(",\"exact_compare_rel_error\":");
        push_opt_f64(&mut o, p.exact_compare_rel_error);
        o.push_str(",\"exact_compare_sampled\":");
        match p.exact_compare_sampled {
            None => o.push_str("null"),
            Some(n) => o.push_str(&n.to_string()),
        }
        o.push_str(",\"fault_tolerant\":");
        o.push_str(if p.fault_tolerant { "true" } else { "false" });
        o.push_str(",\"timeouts\":");
        o.push_str(&p.timeouts.to_string());
        o.push_str(",\"retries\":");
        o.push_str(&p.retries.to_string());
        o.push_str(",\"failovers\":");
        o.push_str(&p.failovers.to_string());
        o.push_str(",\"flash\":");
        o.push_str(if p.flash { "true" } else { "false" });
        o.push_str(",\"failed_elements\":");
        o.push_str(&p.failed_elements.to_string());
        o.push_str(",\"reoptimized\":");
        o.push_str(if p.reoptimized { "true" } else { "false" });
        o.push_str(",\"predicted_floor_ms\":");
        push_f64(&mut o, p.predicted_floor_ms);
        o.push_str(",\"des_response_ms\":");
        push_f64(&mut o, p.des_response_ms);
        o.push_str(",\"des_floor_ms\":");
        push_f64(&mut o, p.des_floor_ms);
        o.push_str(",\"rel_error\":");
        push_f64(&mut o, p.rel_error);
        o.push_str(",\"completed_requests\":");
        o.push_str(&p.completed_requests.to_string());
        o.push_str(",\"max_server_utilization\":");
        push_f64(&mut o, p.max_server_utilization);
        o.push('}');
    }
    o.push(']');
    // Optional trailing field: appended only when the runner collected a
    // stage breakdown, so default-path checkpoint lines stay
    // byte-identical to earlier releases (and the resume scanner, which
    // pins only the leading fields, is unaffected either way).
    if let Some(s) = &report.stages {
        o.push_str(&format!(
            ",\"stages\":{{\"topology_sites\":{},\"placement_elements\":{},\
             \"lp_pivots\":{},\"capacity_points\":{},\"des_phases\":{},\
             \"des_completed_requests\":{}}}",
            s.topology_sites,
            s.placement_elements,
            s.lp_pivots,
            s.capacity_points,
            s.des_phases,
            s.des_completed_requests
        ));
    }
    o.push('}');
    o
}

fn push_str_field(out: &mut String, s: &str) {
    out.push('"');
    out.push_str(&escape_json(s));
    out.push('"');
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// `{:.17e}` round-trips every finite `f64` bit-exactly and renders
/// deterministically; JSON has no NaN/Infinity, so non-finite values
/// (which the pipeline never produces) encode as `null`.
fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v:.17e}"));
    } else {
        out.push_str("null");
    }
}

fn push_opt_f64(out: &mut String, v: Option<f64>) {
    match v {
        Some(v) => push_f64(out, v),
        None => out.push_str("null"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{PipelineSpec, TopologySource, WorkloadSpec};

    fn tiny_spec(name: &str, seed: u64) -> ScenarioSpec {
        ScenarioSpec {
            name: name.to_string(),
            topology: TopologySource::Euclidean {
                sites: 10,
                side_ms: 100.0,
                seed: 3,
            },
            workload: WorkloadSpec {
                locations: 3,
                per_location: 2,
                ..WorkloadSpec::default()
            },
            failures: Default::default(),
            pipeline: PipelineSpec {
                system: "grid:2".to_string(),
                requests: 20,
                warmup: 4,
                seed,
                tolerance: 0.3,
                ..PipelineSpec::default()
            },
        }
    }

    fn specs() -> Vec<ScenarioSpec> {
        vec![
            tiny_spec("alpha", 1),
            tiny_spec("beta", 2),
            tiny_spec("gamma", 3),
        ]
    }

    fn temp_path(tag: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("qp-matrix-{tag}-{}", std::process::id()));
        p
    }

    #[test]
    fn checkpointed_run_matches_plain_matrix() {
        let specs = specs();
        let ckpt = temp_path("full");
        let _ = std::fs::remove_file(&ckpt);
        let runner = ScenarioRunner::new();
        let entries = runner.run_matrix_checkpointed(&specs, &ckpt).unwrap();
        let plain = runner.run_matrix(&specs).unwrap();
        assert_eq!(entries.len(), 3);
        for (e, r) in entries.iter().zip(&plain) {
            assert!(!e.resumed);
            assert_eq!(e.name, r.name);
            assert_eq!(e.pass, r.pass);
            assert_eq!(
                e.json_line,
                encode_report(e.spec_index, &specs[e.spec_index], r)
            );
        }
        std::fs::remove_file(&ckpt).unwrap();
    }

    #[test]
    fn resume_skips_recorded_specs_and_merges_identically() {
        let specs = specs();
        let runner = ScenarioRunner::new();

        // Cold, uninterrupted run → the reference merged output.
        let cold_ckpt = temp_path("cold");
        let _ = std::fs::remove_file(&cold_ckpt);
        let cold = runner.run_matrix_checkpointed(&specs, &cold_ckpt).unwrap();
        let cold_out = temp_path("cold-out");
        write_merged_jsonl(&cold, &cold_out).unwrap();

        // "Interrupted" run: a checkpoint holding only spec 1, plus a
        // torn final line a kill would leave behind.
        let ckpt = temp_path("resume");
        let _ = std::fs::remove_file(&ckpt);
        let mut partial = cold[1].json_line.clone();
        partial.push('\n');
        partial.push_str(&cold[2].json_line[..40]); // torn: no newline
        std::fs::write(&ckpt, &partial).unwrap();

        let resumed = runner.run_matrix_checkpointed(&specs, &ckpt).unwrap();
        assert!(!resumed[0].resumed);
        assert!(resumed[1].resumed, "spec 1 was in the checkpoint");
        assert!(!resumed[2].resumed, "torn line must re-run");
        assert!(resumed[1].report.is_none());

        let out = temp_path("resume-out");
        write_merged_jsonl(&resumed, &out).unwrap();
        assert_eq!(
            std::fs::read(&cold_out).unwrap(),
            std::fs::read(&out).unwrap(),
            "merged JSONL must be byte-identical to the cold run"
        );
        for p in [&cold_ckpt, &cold_out, &ckpt, &out] {
            std::fs::remove_file(p).unwrap();
        }
    }

    #[test]
    fn mismatched_checkpoint_is_rejected() {
        let specs = specs();
        let runner = ScenarioRunner::new();
        let ckpt = temp_path("mismatch");
        let alpha_hash = spec_hash(&specs[0]);
        // A record claiming index 0 is named "zeta".
        std::fs::write(
            &ckpt,
            format!(
                "{{\"spec_index\":0,\"name\":\"zeta\",\"spec_hash\":\"{alpha_hash}\",\
                 \"pass\":true,\"x\":1}}\n"
            ),
        )
        .unwrap();
        let err = runner.run_matrix_checkpointed(&specs, &ckpt).unwrap_err();
        let ScenarioError::Io(msg) = err else {
            panic!("wrong error: {err}");
        };
        assert!(msg.contains("zeta"), "{msg}");
        assert!(msg.contains("alpha"), "{msg}");

        // Right name, but the spec's contents changed since the record
        // was written: resume must refuse the stale result.
        std::fs::write(
            &ckpt,
            "{\"spec_index\":0,\"name\":\"alpha\",\
             \"spec_hash\":\"0123456789abcdef\",\"pass\":true,\"x\":1}\n",
        )
        .unwrap();
        let err = runner.run_matrix_checkpointed(&specs, &ckpt).unwrap_err();
        let ScenarioError::Io(msg) = err else {
            panic!("wrong error: {err}");
        };
        assert!(msg.contains("changed since this checkpoint"), "{msg}");

        // Out-of-range index.
        std::fs::write(
            &ckpt,
            format!(
                "{{\"spec_index\":9,\"name\":\"zeta\",\"spec_hash\":\"{alpha_hash}\",\
                 \"pass\":true,\"x\":1}}\n"
            ),
        )
        .unwrap();
        assert!(matches!(
            runner.run_matrix_checkpointed(&specs, &ckpt),
            Err(ScenarioError::Io(_))
        ));

        // Garbage anywhere but a torn final line.
        std::fs::write(&ckpt, "not json\n").unwrap();
        assert!(matches!(
            runner.run_matrix_checkpointed(&specs, &ckpt),
            Err(ScenarioError::Io(_))
        ));
        std::fs::remove_file(&ckpt).unwrap();
    }

    #[test]
    fn encoded_records_scan_back() {
        let spec = tiny_spec("weird \"name\"\t", 5);
        let report = ScenarioRunner::new().run(&spec).unwrap();
        let line = encode_report(7, &spec, &report);
        let (idx, escaped, hash, pass) = scan_line(&line).expect("scans");
        assert_eq!(idx, 7);
        assert_eq!(escaped, escape_json("weird \"name\"\t"));
        assert_eq!(hash, spec_hash(&spec));
        assert_eq!(pass, report.pass);
    }
}
