//! **qp-scenario** — declarative WAN/workload/failure scenarios and the
//! end-to-end pipeline runner.
//!
//! The paper's evaluation is a fixed handful of topology × demand ×
//! capacity configurations; this crate mass-produces *arbitrary* ones. A
//! [`ScenarioSpec`] — parsed from a small TOML-like text format
//! ([`spec`] module docs) or built in code — composes four ingredients:
//!
//! 1. **A topology source** ([`TopologySource`]): the built-in synthetic
//!    datasets, an RTT matrix file, or the seeded transit-stub /
//!    hierarchical WAN generators of `qp_topology::datasets`.
//! 2. **A demand model** ([`WorkloadSpec`]): uniform or Zipf-skewed
//!    per-location demand weights on a representative
//!    [`ClientPopulation`](qp_protocol::ClientPopulation), plus an
//!    optional time-phased [`FlashCrowd`] surge.
//! 3. **A failure plan** ([`FailurePlan`]): per-phase site slowdowns and
//!    crashes injected through the simulator's `service_multipliers`,
//!    with optional mid-run strategy re-optimization.
//! 4. **A pipeline config** ([`PipelineSpec`]): quorum system, placement
//!    algorithm, capacity selection (uniform sweep, fixed, or the §7
//!    heuristics), the LP response model, and the DES shape.
//!
//! [`ScenarioRunner`] executes a matrix of specs on the deterministic
//! `qp-par` worker pool — placement → strategy LP (warm-started capacity
//! re-solves) → per-phase DES — and emits a structured
//! [`ScenarioReport`]. Every phase cross-checks the LP-side prediction
//! against the DES measurement: the expected idle-network floor of the
//! optimized strategy (demand weights and failure multipliers folded in)
//! must match the simulated floor within the spec's tolerance.
//!
//! Everything is a pure function of the spec, so reports are
//! bit-identical across runs and thread counts.
//!
//! # Examples
//!
//! ```
//! use qp_scenario::{ScenarioRunner, ScenarioSpec};
//!
//! let spec = ScenarioSpec::parse(
//!     "name = demo\n\
//!      [topology]\n\
//!      source = transit-stub\n\
//!      transit-domains = 2\n\
//!      transit-size = 2\n\
//!      stubs-per-transit = 1\n\
//!      stub-size = 3\n\
//!      seed = 7\n\
//!      [workload]\n\
//!      locations = 4\n\
//!      per-location = 2\n\
//!      demand = zipf:0.8\n\
//!      [pipeline]\n\
//!      system = grid:2\n\
//!      capacity = sweep:3\n\
//!      requests = 20\n\
//!      tolerance = 0.25\n",
//! )?;
//! let report = ScenarioRunner::new().run(&spec)?;
//! assert!(report.pass, "LP-vs-DES cross-check failed:\n{report}");
//! # Ok::<(), qp_scenario::ScenarioError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod matrix;
pub mod report;
mod runner;
pub mod spec;

pub use error::ScenarioError;
pub use matrix::{encode_report, spec_hash, write_merged_jsonl, MatrixEntry};
pub use report::{PhaseReport, PricingReport, ScenarioReport, StageBreakdown};
pub use runner::ScenarioRunner;
pub use spec::{
    parse_placement, parse_system, CapacityChoice, DemandModel, EngineSelection, FailureEvent,
    FailurePlan, FlashCrowd, PipelineSpec, ScenarioSpec, TopologySource, WorkloadSpec,
};
