//! Error type for scenario parsing and execution.

use std::error::Error;
use std::fmt;

use qp_core::CoreError;
use qp_protocol::SimError;
use qp_quorum::QuorumError;
use qp_topology::TopologyError;

/// Errors from scenario parsing or pipeline execution.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ScenarioError {
    /// The spec text failed to parse.
    Parse {
        /// 1-based line of the offending entry (0 when no line applies).
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The spec parsed but is semantically invalid (e.g. a flash phase
    /// beyond the phase count).
    Invalid(String),
    /// A topology build or file operation failed.
    Topology(TopologyError),
    /// A quorum-system operation failed.
    Quorum(QuorumError),
    /// A placement/strategy-LP step failed.
    Core(CoreError),
    /// The protocol simulation rejected its inputs.
    Sim(SimError),
    /// A checkpoint or report file operation failed (message names the
    /// path). Carried as a string so the error stays `Clone + PartialEq`.
    Io(String),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Parse { line, message } if *line > 0 => {
                write!(f, "spec line {line}: {message}")
            }
            ScenarioError::Parse { message, .. } => write!(f, "spec: {message}"),
            ScenarioError::Invalid(message) => write!(f, "invalid scenario: {message}"),
            ScenarioError::Topology(e) => write!(f, "topology: {e}"),
            ScenarioError::Quorum(e) => write!(f, "quorum system: {e}"),
            ScenarioError::Core(e) => write!(f, "pipeline: {e}"),
            ScenarioError::Sim(e) => write!(f, "simulation: {e}"),
            ScenarioError::Io(message) => write!(f, "i/o: {message}"),
        }
    }
}

impl Error for ScenarioError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ScenarioError::Topology(e) => Some(e),
            ScenarioError::Quorum(e) => Some(e),
            ScenarioError::Core(e) => Some(e),
            ScenarioError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TopologyError> for ScenarioError {
    fn from(e: TopologyError) -> Self {
        ScenarioError::Topology(e)
    }
}

impl From<QuorumError> for ScenarioError {
    fn from(e: QuorumError) -> Self {
        ScenarioError::Quorum(e)
    }
}

impl From<CoreError> for ScenarioError {
    fn from(e: CoreError) -> Self {
        ScenarioError::Core(e)
    }
}

impl From<SimError> for ScenarioError {
    fn from(e: SimError) -> Self {
        ScenarioError::Sim(e)
    }
}
