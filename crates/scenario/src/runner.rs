//! The end-to-end scenario pipeline: topology → placement → strategy LP
//! → capacity selection → per-phase DES validation → cross-check.

use qp_core::capacity::{capacity_sweep, CapacityProfile};
use qp_core::response::{evaluate_matrix_placed, evaluate_matrix_placed_weighted};
use qp_core::strategy_lp::{
    CapacitySweepSolver, ColGenSolver, ColGenStats, ColumnGeneration, StrategyLpOutcome,
};
use qp_core::{CoreError, EvalContext, Placement, ResponseModel};
use qp_par::ParPool;
use qp_protocol::{
    simulate, simulate_with_engine, ClientPopulation, ProtocolConfig, QuorumChoice, SimEngine,
};
use qp_quorum::{Quorum, StrategyMatrix};
use qp_topology::{Network, NodeId};

use crate::report::{PhaseReport, PricingReport, ScenarioReport, StageBreakdown};
use crate::spec::{parse_system, CapacityChoice, DemandModel, ScenarioSpec};
use crate::ScenarioError;

/// Executes [`ScenarioSpec`]s through the full pipeline.
///
/// Every step is a pure function of the spec: topology generation,
/// placement search, LP solves, and the DES all run from fixed seeds, so
/// a scenario's report is bit-identical across runs and thread counts
/// (the matrix fan-out and the capacity sweep ride
/// [`qp_par::ParPool`], whose results are input-ordered by contract).
#[derive(Debug, Clone, Copy, Default)]
pub struct ScenarioRunner {
    stage_breakdown: bool,
}

impl ScenarioRunner {
    /// A runner with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enables the per-pipeline-stage work breakdown
    /// ([`ScenarioReport::stages`]). Off by default so rendered reports
    /// and JSONL checkpoint lines stay byte-identical to earlier
    /// releases; the CLI switches it on together with `--trace`.
    #[must_use]
    pub fn with_stage_breakdown(mut self, on: bool) -> Self {
        self.stage_breakdown = on;
        self
    }

    /// Runs a matrix of scenarios on the global worker pool, reports in
    /// spec order.
    ///
    /// # Errors
    ///
    /// The error of the lowest-indexed failing scenario.
    pub fn run_matrix(&self, specs: &[ScenarioSpec]) -> Result<Vec<ScenarioReport>, ScenarioError> {
        ParPool::global()
            .run(specs.len(), |i| self.run(&specs[i]))
            .into_iter()
            .collect()
    }

    /// Runs one scenario end to end.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::Invalid`] for semantic problems (validated up
    /// front); topology/LP/DES failures propagate with their layer's
    /// error type.
    pub fn run(&self, spec: &ScenarioSpec) -> Result<ScenarioReport, ScenarioError> {
        spec.validate()?;
        let pipeline = &spec.pipeline;
        // Stage spans are logical markers (no timing data by themselves;
        // a wall-clock-enabled TraceWriter stamps them). They emit only
        // from the main thread — inside a `run_matrix` worker they are
        // suppressed by `qp_obs::worker_scope`, keeping traces identical
        // at any thread count.
        let run_span = qp_obs::span(
            "scenario.run",
            &[("name", qp_obs::FieldValue::Str(&spec.name))],
        );

        // 1. Topology and quorum system.
        let topo_span = qp_obs::span("scenario.topology", &[]);
        let net = spec.topology.build()?;
        topo_span.end(&[("sites", qp_obs::FieldValue::U64(net.len() as u64))]);
        let sys = parse_system(&pipeline.system)?;
        if sys.universe_size() > net.len() {
            return Err(ScenarioError::Invalid(format!(
                "universe of {} exceeds the {}-site network",
                sys.universe_size(),
                net.len()
            )));
        }

        // 2. Placement and client population. Location count must fit
        // the network — silently shrinking it would run a different
        // scenario than declared (and could drop the flash crowd).
        let place_span = qp_obs::span("scenario.placement", &[]);
        let placement = pipeline.placement.compute(&net, &sys)?;
        place_span.end(&[(
            "elements",
            qp_obs::FieldValue::U64(sys.universe_size() as u64),
        )]);
        let locations = spec.workload.locations;
        if locations > net.len() {
            return Err(ScenarioError::Invalid(format!(
                "{locations} client locations exceed the {}-site network",
                net.len()
            )));
        }
        let uniform_pop = ClientPopulation::representative(
            &net,
            &sys,
            &placement,
            locations,
            spec.workload.per_location,
        );
        let nominal = match spec.workload.demand {
            DemandModel::Uniform => uniform_pop,
            DemandModel::Zipf(theta) => ClientPopulation::zipf(
                uniform_pop.locations().to_vec(),
                spec.workload.per_location,
                theta,
            ),
        };

        // 3. The strategy LP over the demand-weighted client list: each
        // location appears once per client it hosts, so the LP's uniform
        // client average *is* the demand-weighted average.
        //
        // When *every* phase runs the aggregated engine (which validation
        // ties to colgen) the flattened per-client structures are skipped
        // entirely: at million-client scale the per-client delta matrix
        // alone would be gigabytes, and the location-level weighted
        // evaluator scores the same optimum (same linearity argument as
        // the colgen master itself).
        let lp_span = qp_obs::span(
            "scenario.lp",
            &[("colgen", qp_obs::FieldValue::Bool(pipeline.colgen))],
        );
        let quorums = sys.enumerate(pipeline.quorum_limit)?;
        let flatten = !pipeline.engine.all_aggregated();
        let lp_clients: Vec<NodeId> = if flatten {
            nominal.client_locations()
        } else {
            Vec::new()
        };
        let ctx = flatten.then(|| EvalContext::new(&net, &lp_clients));
        let pq = ctx.as_ref().map(|c| c.place(&placement, &quorums));

        // With `colgen = false` (the default) the LP is the historical
        // full-enumeration warm-sweep solver over the flattened client
        // list — reports stay bit-identical to earlier releases. With
        // `colgen = true` the LP runs at *location* level through the
        // restricted master: demand weights `ŵ_l ∝ client count` appear
        // directly as objective and capacity-row coefficients. The two
        // formulations share their optimum by linearity — a location's
        // clients all contribute the identical LP row, so the flattened
        // uniform client average *is* the weighted location average —
        // but the weighted form materializes `locations` convexity rows
        // instead of `Σ counts` and generates columns lazily.
        let loc_sites: Vec<NodeId> = nominal.locations().to_vec();
        let loc_weights: Vec<f64> = nominal.client_counts().iter().map(|&c| c as f64).collect();
        let loc_ctx = pipeline.colgen.then(|| EvalContext::new(&net, &loc_sites));
        let loc_pq = loc_ctx.as_ref().map(|c| c.place(&placement, &quorums));
        let mut engine = match &loc_pq {
            Some(pq_loc) => LpEngine::ColGen {
                solver: Box::new(ColGenSolver::with_weights(
                    pq_loc,
                    &loc_weights,
                    ColumnGeneration::default(),
                )?),
                pricing: PricingReport {
                    columns_in_master: 0,
                    total_columns: 0,
                    columns_generated: 0,
                    oracle_passes: 0,
                    master_resolves: 0,
                },
            },
            None => LpEngine::Full(Box::new(CapacitySweepSolver::new(
                pq.as_ref().expect("non-colgen scenarios always flatten"),
            )?)),
        };
        let model = ResponseModel::from_demand(pipeline.op_time_ms, pipeline.demand);
        let mut lp_pivots = engine.base_iterations();
        lp_span.end(&[("base_pivots", qp_obs::FieldValue::U64(lp_pivots as u64))]);
        let loc_indices: Vec<usize> = if flatten {
            nominal.location_indices()
        } else {
            Vec::new()
        };

        // 4. Capacity selection.
        let capacity_span = qp_obs::span("scenario.capacity", &[]);
        let capacity_points: usize;
        let n = net.len();
        let (base_outcome, base_caps, capacity_label) = match pipeline.capacity {
            CapacityChoice::Sweep { steps } => {
                let l_opt = sys.optimal_load().unwrap_or(0.5);
                let cs = capacity_sweep(l_opt, steps);
                capacity_points = cs.len();
                // The full-enumeration solver re-solves each point from an
                // immutable warm base, so the sweep parallelizes; the
                // colgen master mutates (columns accumulate across
                // points), so it runs sequentially in sweep order —
                // deterministic and thread-count invariant either way.
                let solved = if let LpEngine::Full(solver) = &engine {
                    let pq = pq.as_ref().expect("non-colgen scenarios always flatten");
                    ParPool::global().run(cs.len(), |i| {
                        let outcome = solver.solve_uniform(cs[i])?;
                        let eval = evaluate_matrix_placed(pq, &outcome.strategy, model)?;
                        Ok::<_, CoreError>((outcome, eval))
                    })
                } else {
                    cs.iter()
                        .map(|&c| {
                            let outcome = engine.solve_uniform(c)?;
                            let eval = if let Some(pq) = &pq {
                                let flat = expand_rows(&outcome.strategy, &loc_indices)?;
                                evaluate_matrix_placed(pq, &flat, model)?
                            } else {
                                evaluate_matrix_placed_weighted(
                                    loc_pq.as_ref().expect("colgen built loc_pq"),
                                    &outcome.strategy,
                                    &loc_weights,
                                    model,
                                )?
                            };
                            Ok::<_, CoreError>((outcome, eval))
                        })
                        .collect()
                };
                let mut best: Option<(f64, StrategyLpOutcome, f64)> = None;
                for (c, outcome) in cs.iter().zip(solved) {
                    match outcome {
                        Ok((outcome, eval)) => {
                            lp_pivots += outcome.stats.iterations;
                            let better = best
                                .as_ref()
                                .is_none_or(|(_, _, r)| eval.avg_response_ms < *r);
                            if better {
                                best = Some((*c, outcome, eval.avg_response_ms));
                            }
                        }
                        Err(CoreError::Infeasible) => continue,
                        Err(e) => return Err(e.into()),
                    }
                }
                let (c, outcome, _) = best.ok_or(CoreError::Infeasible)?;
                let label = format!("sweep({steps}) → c* = {c:.3}");
                (outcome, CapacityProfile::uniform(n, c), label)
            }
            CapacityChoice::Fixed(c) => {
                capacity_points = 1;
                let outcome = engine.solve_uniform(c)?;
                lp_pivots += outcome.stats.iterations;
                (
                    outcome,
                    CapacityProfile::uniform(n, c),
                    format!("fixed {c:.3}"),
                )
            }
            CapacityChoice::LoadProportional { beta, gamma } => {
                capacity_points = 2;
                let unconstrained = engine.solve_profile(&CapacityProfile::unbounded(n))?;
                lp_pivots += unconstrained.stats.iterations;
                // The colgen strategy is location-level: weight its rows
                // by client counts instead of flattening (the loads
                // agree by linearity).
                let loads = if let Some(loc_pq) = &loc_pq {
                    evaluate_matrix_placed_weighted(
                        loc_pq,
                        &unconstrained.strategy,
                        &loc_weights,
                        ResponseModel::network_delay_only(),
                    )?
                    .node_loads
                } else {
                    evaluate_matrix_placed(
                        pq.as_ref().expect("non-colgen scenarios always flatten"),
                        &unconstrained.strategy,
                        ResponseModel::network_delay_only(),
                    )?
                    .node_loads
                };
                let caps = CapacityProfile::load_proportional(
                    &loads,
                    &placement.support_set(),
                    beta,
                    gamma,
                )?;
                let outcome = engine.solve_profile(&caps)?;
                lp_pivots += outcome.stats.iterations;
                (
                    outcome,
                    caps,
                    format!("load-proportional [{beta}, {gamma}]"),
                )
            }
            CapacityChoice::MarginalValue { beta, gamma } => {
                capacity_points = 2;
                let reference = engine.solve_uniform(gamma)?;
                lp_pivots += reference.stats.iterations;
                let prices: Vec<f64> = reference
                    .capacity_duals
                    .iter()
                    .map(|&d| (-d).max(0.0))
                    .collect();
                let caps = CapacityProfile::marginal_value(
                    &prices,
                    &placement.support_set(),
                    beta,
                    gamma,
                )?;
                let outcome = engine.solve_profile(&caps)?;
                lp_pivots += outcome.stats.iterations;
                (outcome, caps, format!("marginal-value [{beta}, {gamma}]"))
            }
        };
        capacity_span.end(&[
            ("points", qp_obs::FieldValue::U64(capacity_points as u64)),
            ("pivots", qp_obs::FieldValue::U64(lp_pivots as u64)),
        ]);
        // Scoring runs over the flattened client list in both modes; the
        // DES needs per-*location* rows. Full enumeration solves at client
        // level (score directly, collapse for the DES); colgen solves at
        // location level (expand for scoring, pass through for the DES).
        let (base_eval, base_rows) = if engine.is_colgen() {
            let eval = if let Some(pq) = &pq {
                let flat = expand_rows(&base_outcome.strategy, &loc_indices)?;
                evaluate_matrix_placed(pq, &flat, model)?
            } else {
                evaluate_matrix_placed_weighted(
                    loc_pq.as_ref().expect("colgen built loc_pq"),
                    &base_outcome.strategy,
                    &loc_weights,
                    model,
                )?
            };
            (eval, base_outcome.strategy.clone())
        } else {
            (
                evaluate_matrix_placed(
                    pq.as_ref().expect("non-colgen scenarios always flatten"),
                    &base_outcome.strategy,
                    model,
                )?,
                collapse_rows(
                    &base_outcome.strategy,
                    &loc_indices,
                    locations,
                    quorums.len(),
                )?,
            )
        };

        // 5. Per-phase DES validation. With `carry-queues` each phase
        // after the first starts its servers with the residual backlog
        // the previous phase left behind (instead of idle), so a flash
        // crowd's queue buildup survives the phase boundary.
        let universe = sys.universe_size();
        let mut phases = Vec::with_capacity(pipeline.phases);
        let mut carry: Option<Vec<f64>> = None;
        for phase in 0..pipeline.phases {
            let phase_engine = pipeline.engine.for_phase(phase);
            let phase_span = qp_obs::span(
                "scenario.phase",
                &[
                    ("phase", qp_obs::FieldValue::U64(phase as u64)),
                    (
                        "engine",
                        qp_obs::FieldValue::Str(match phase_engine {
                            SimEngine::Exact => "exact",
                            SimEngine::Aggregated => "aggregated",
                        }),
                    ),
                ],
            );
            // `validate()` guarantees `focus < locations`.
            let flash = spec.workload.flash.filter(|f| f.phase == phase);
            let pop = match flash {
                Some(f) => nominal.boosted(f.focus, f.boost),
                None => nominal.clone(),
            };
            let mults = spec.failures.multipliers_for_phase(phase, universe);
            let failed_elements = mults
                .as_ref()
                .map_or(0, |m| m.iter().filter(|&&x| x != 1.0).count());

            // Optional mid-run re-optimization: the strategy LP re-solves
            // with degraded sites' capacity scaled down by their slowdown.
            // If the tuned capacities cannot absorb the shifted load,
            // retry in survival mode — healthy nodes relaxed to full
            // capacity — before falling back to the nominal strategy.
            let mut reoptimized = false;
            let rows = if failed_elements > 0 && spec.failures.reoptimize {
                let phase_mults = mults.as_deref().expect("failures present");
                let mut outcome = None;
                for caps in [
                    scale_caps_for_failures(&base_caps, &placement, phase_mults),
                    scale_caps_for_failures(
                        &CapacityProfile::uniform(n, 1.0),
                        &placement,
                        phase_mults,
                    ),
                ] {
                    match engine.solve_profile(&caps) {
                        Ok(o) => {
                            outcome = Some(o);
                            break;
                        }
                        Err(CoreError::Infeasible) => continue,
                        Err(e) => return Err(e.into()),
                    }
                }
                match outcome {
                    Some(outcome) => {
                        lp_pivots += outcome.stats.iterations;
                        reoptimized = true;
                        if engine.is_colgen() {
                            outcome.strategy
                        } else {
                            collapse_rows(
                                &outcome.strategy,
                                &loc_indices,
                                locations,
                                quorums.len(),
                            )?
                        }
                    }
                    // Even full healthy capacity cannot serve around the
                    // failures; keep the nominal strategy for the phase.
                    None => base_rows.clone(),
                }
            } else {
                base_rows.clone()
            };

            let predicted_floor_ms = expected_floor_ms(
                &net,
                &placement,
                &quorums,
                &rows,
                &pop,
                pipeline.service_time_ms,
                mults.as_deref(),
            );

            let cfg = ProtocolConfig {
                service_time_ms: pipeline.service_time_ms,
                warmup_requests: pipeline.warmup,
                measured_requests: pipeline.requests,
                seed: qp_par::job_seed(pipeline.seed, phase),
                service_multipliers: mults,
                dedup_colocated: false,
                streaming_percentiles: false,
                initial_server_busy_ms: carry.take(),
                fault: spec.failures.fault.clone(),
            };
            let choice = QuorumChoice::Weighted {
                quorums: quorums.clone(),
                strategy: rows,
            };
            let compare = pipeline.exact_compare && phase_engine == SimEngine::Aggregated;
            let compare_choice = compare.then(|| choice.clone());
            let report =
                simulate_with_engine(&net, &sys, &placement, &pop, choice, &cfg, phase_engine)?;
            if pipeline.carry_queues {
                carry = Some(report.residual_busy_ms.clone());
            }
            // `exact-compare`: rerun the phase on the exact per-request
            // engine (same config, same carried backlog) and record how
            // far the aggregated mean response drifts from it. With
            // `exact-compare-sample` the divergence is measured between
            // *both* engines on a deterministic proportional subsample
            // (per-location head count scaled down, demand weights kept)
            // — the full population still drives the phase itself.
            let (exact_response_ms, exact_compare_rel_error, exact_compare_sampled) =
                if let Some(choice) = compare_choice {
                    let cap = pipeline.exact_compare_sample;
                    let sub = (cap > 0 && pop.total_clients() > cap).then(|| {
                        let per = (cap / pop.locations().len()).max(1);
                        pop.with_per_location(per)
                    });
                    let (agg_response_ms, cmp_pop, sampled) = match &sub {
                        Some(sp) => {
                            let agg = simulate_with_engine(
                                &net,
                                &sys,
                                &placement,
                                sp,
                                choice.clone(),
                                &cfg,
                                SimEngine::Aggregated,
                            )?;
                            (agg.avg_response_ms, sp, Some(sp.total_clients()))
                        }
                        None => (report.avg_response_ms, &pop, None),
                    };
                    let exact = simulate(&net, &sys, &placement, cmp_pop, choice, &cfg)?;
                    // Fault-counter consistency: the aggregated engine's
                    // timeout/retry/failover counters are *analytic*
                    // (cycles × doomed population), so they cannot match
                    // the exact engine's event counts numerically — but
                    // both must agree on whether faults occurred at all.
                    // Only meaningful when both engines saw the same
                    // population (no subsample).
                    if sampled.is_none() {
                        for (what, agg_n, exact_n) in [
                            ("timeouts", report.timeouts, exact.timeouts),
                            ("retries", report.retries, exact.retries),
                            ("failovers", report.failovers, exact.failovers),
                        ] {
                            if (agg_n == 0) != (exact_n == 0) {
                                return Err(ScenarioError::Invalid(format!(
                                    "exact-compare fault-counter inconsistency in \
                                     phase {phase}: aggregated engine reported \
                                     {agg_n} {what}, exact engine {exact_n}"
                                )));
                            }
                        }
                    }
                    let err = if exact.avg_response_ms > 0.0 {
                        (agg_response_ms - exact.avg_response_ms).abs() / exact.avg_response_ms
                    } else {
                        0.0
                    };
                    (Some(exact.avg_response_ms), Some(err), sampled)
                } else {
                    (None, None, None)
                };
            let rel_error = if predicted_floor_ms > 0.0 {
                (report.avg_network_delay_ms - predicted_floor_ms).abs() / predicted_floor_ms
            } else {
                0.0
            };
            let max_util = report
                .server_utilization
                .iter()
                .copied()
                .fold(0.0, f64::max);
            phase_span.end(&[
                (
                    "completed",
                    qp_obs::FieldValue::U64(report.completed_requests),
                ),
                ("timeouts", qp_obs::FieldValue::U64(report.timeouts)),
            ]);
            phases.push(PhaseReport {
                phase,
                engine: phase_engine,
                exact_response_ms,
                exact_compare_rel_error,
                exact_compare_sampled,
                fault_tolerant: spec.failures.fault.is_some(),
                timeouts: report.timeouts,
                retries: report.retries,
                failovers: report.failovers,
                flash: flash.is_some(),
                failed_elements,
                reoptimized,
                predicted_floor_ms,
                des_response_ms: report.avg_response_ms,
                des_floor_ms: report.avg_network_delay_ms,
                rel_error,
                completed_requests: report.completed_requests,
                max_server_utilization: max_util,
            });
        }

        // 6. Cross-check: every phase's measured floor must match the
        // prediction within tolerance (failure phases included — the
        // prediction folds the service multipliers in). When
        // `exact-compare` ran, the aggregated-vs-exact response
        // divergence must clear the same tolerance.
        let max_rel_error = phases.iter().map(|p| p.rel_error).fold(0.0, f64::max);
        let max_engine_divergence = phases
            .iter()
            .filter_map(|p| p.exact_compare_rel_error)
            .fold(0.0, f64::max);
        let pass =
            max_rel_error <= pipeline.tolerance && max_engine_divergence <= pipeline.tolerance;

        let stages = self.stage_breakdown.then(|| StageBreakdown {
            topology_sites: net.len(),
            placement_elements: sys.universe_size(),
            lp_pivots,
            capacity_points,
            des_phases: pipeline.phases,
            des_completed_requests: phases.iter().map(|p| p.completed_requests).sum(),
        });
        if qp_obs::enabled() {
            qp_obs::counter_add("scenario_runs_total", 1);
            qp_obs::counter_add("scenario_phases_total", pipeline.phases as u64);
            qp_obs::observe("scenario_lp_pivots", lp_pivots as f64);
        }
        run_span.end(&[("pass", qp_obs::FieldValue::Bool(pass))]);

        Ok(ScenarioReport {
            name: spec.name.clone(),
            topology: spec.topology.describe(),
            sites: net.len(),
            system: sys.label(),
            placement_sites: placement
                .support_set()
                .iter()
                .map(|&v| net.label(v).to_string())
                .collect(),
            locations,
            total_clients: nominal.total_clients(),
            capacity: capacity_label,
            lp_delay_ms: base_outcome.delay_ms,
            lp_response_ms: base_eval.avg_response_ms,
            lp_pivots,
            pricing: engine.pricing(),
            stages,
            phases,
            tolerance: pipeline.tolerance,
            max_rel_error,
            pass,
        })
    }
}

/// The two strategy-LP engines a scenario can run on: the historical
/// full-enumeration warm-sweep solver over the flattened client list, or
/// the demand-weighted location-level restricted master (column
/// generation). The colgen variant accumulates pricing statistics across
/// every solve for [`ScenarioReport::pricing`].
enum LpEngine<'a> {
    Full(Box<CapacitySweepSolver>),
    ColGen {
        solver: Box<ColGenSolver<'a>>,
        pricing: PricingReport,
    },
}

impl LpEngine<'_> {
    fn is_colgen(&self) -> bool {
        matches!(self, LpEngine::ColGen { .. })
    }

    /// Pivots spent before the first parametrized solve (the full
    /// solver's cold base build; the colgen master defers all work).
    fn base_iterations(&self) -> usize {
        match self {
            LpEngine::Full(solver) => solver.base_stats().iterations,
            LpEngine::ColGen { .. } => 0,
        }
    }

    fn solve_uniform(&mut self, c: f64) -> Result<StrategyLpOutcome, CoreError> {
        match self {
            LpEngine::Full(solver) => solver.solve_uniform(c),
            LpEngine::ColGen { solver, pricing } => {
                let outcome = solver.solve_uniform(c)?;
                absorb_pricing(pricing, outcome.colgen);
                Ok(outcome)
            }
        }
    }

    fn solve_profile(&mut self, caps: &CapacityProfile) -> Result<StrategyLpOutcome, CoreError> {
        match self {
            LpEngine::Full(solver) => solver.solve_profile(caps),
            LpEngine::ColGen { solver, pricing } => {
                let outcome = solver.solve_profile(caps)?;
                absorb_pricing(pricing, outcome.colgen);
                Ok(outcome)
            }
        }
    }

    fn pricing(&self) -> Option<PricingReport> {
        match self {
            LpEngine::Full(_) => None,
            LpEngine::ColGen { pricing, .. } => Some(*pricing),
        }
    }
}

/// Folds one solve's pricing stats into the scenario-level aggregate:
/// master-size fields reflect the latest solve (columns persist across
/// solves), work counters sum.
fn absorb_pricing(acc: &mut PricingReport, stats: Option<ColGenStats>) {
    if let Some(s) = stats {
        acc.columns_in_master = s.columns_in_master;
        acc.total_columns = s.total_columns;
        acc.columns_generated += s.columns_generated;
        acc.oracle_passes += s.oracle_passes;
        acc.master_resolves += s.master_resolves;
    }
}

/// Expands a per-*location* strategy to the flattened client list (each
/// client inherits its location's row) so the location-level colgen
/// optimum can be scored by the same flattened evaluator as the
/// full-enumeration path.
fn expand_rows(
    strategy: &StrategyMatrix,
    location_indices: &[usize],
) -> Result<StrategyMatrix, CoreError> {
    let rows: Vec<Vec<f64>> = location_indices
        .iter()
        .map(|&loc| strategy.row(loc).to_vec())
        .collect();
    StrategyMatrix::from_rows(rows).map_err(CoreError::from)
}

/// Collapses a per-client strategy (rows aligned with the flattened
/// client list) into a per-*location* strategy by averaging each
/// location's client rows — feasibility and the demand-weighted
/// objective are preserved because the LP is linear. Locations with no
/// clients get the uniform row (they are never sampled).
fn collapse_rows(
    strategy: &StrategyMatrix,
    location_indices: &[usize],
    locations: usize,
    num_quorums: usize,
) -> Result<StrategyMatrix, ScenarioError> {
    let mut rows = vec![vec![0.0; num_quorums]; locations];
    let mut counts = vec![0usize; locations];
    for (client, &loc) in location_indices.iter().enumerate() {
        for (acc, &p) in rows[loc].iter_mut().zip(strategy.row(client)) {
            *acc += p;
        }
        counts[loc] += 1;
    }
    for (row, &count) in rows.iter_mut().zip(&counts) {
        if count > 0 {
            let inv = 1.0 / count as f64;
            for p in row.iter_mut() {
                *p *= inv;
            }
        } else {
            let uniform = 1.0 / num_quorums as f64;
            row.fill(uniform);
        }
    }
    Ok(StrategyMatrix::from_rows(rows)?)
}

/// The expected idle-network floor of the weighted strategy: what the DES
/// floor converges to. Mirrors the simulator's accounting exactly — a
/// request's floor is `max` over contacted nodes of RTT plus the *summed*
/// service of the quorum elements hosted there (same-node messages
/// serialize even on an idle system), with per-element multipliers
/// applied.
fn expected_floor_ms(
    net: &Network,
    placement: &Placement,
    quorums: &[Quorum],
    rows: &StrategyMatrix,
    pop: &ClientPopulation,
    service_time_ms: f64,
    mults: Option<&[f64]>,
) -> f64 {
    let counts = pop.client_counts();
    let total: usize = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let mult = |u: usize| mults.map_or(1.0, |m| m[u]);
    let mut acc = 0.0;
    for (loc_idx, (&loc, &count)) in pop.locations().iter().zip(&counts).enumerate() {
        if count == 0 {
            continue;
        }
        let row = rows.row(loc_idx);
        let mut exp = 0.0;
        for (i, q) in quorums.iter().enumerate() {
            if row[i] == 0.0 {
                continue;
            }
            // Group the quorum's elements by hosting node, summing
            // service times per node.
            let mut by_node: Vec<(usize, f64)> = Vec::new();
            for u in q.iter() {
                let w = placement.node_of(u).index();
                let svc = service_time_ms * mult(u.index());
                match by_node.binary_search_by_key(&w, |&(n, _)| n) {
                    Ok(pos) => by_node[pos].1 += svc,
                    Err(pos) => by_node.insert(pos, (w, svc)),
                }
            }
            let floor = by_node
                .iter()
                .map(|&(w, svc)| net.distance(loc, NodeId::new(w)) + svc)
                .fold(f64::MIN, f64::max);
            exp += row[i] * floor;
        }
        acc += count as f64 * exp;
    }
    acc / total as f64
}

/// Scales a capacity profile down at nodes hosting failed elements: a
/// node whose worst co-located element runs `m×` slower keeps `1/m` of
/// its capacity — the failure-aware input to mid-run re-optimization.
fn scale_caps_for_failures(
    base: &CapacityProfile,
    placement: &Placement,
    mults: &[f64],
) -> CapacityProfile {
    let mut worst = vec![1.0f64; base.len()];
    for (u, &m) in mults.iter().enumerate() {
        let w = placement.node_of(qp_quorum::ElementId::new(u)).index();
        worst[w] = worst[w].max(m);
    }
    let values = (0..base.len())
        .map(|w| base.get(NodeId::new(w)) / worst[w])
        .collect();
    CapacityProfile::from_values(values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{FailureEvent, FailurePlan, FlashCrowd, TopologySource, WorkloadSpec};

    fn small_spec() -> ScenarioSpec {
        ScenarioSpec {
            name: "unit".to_string(),
            topology: TopologySource::Euclidean {
                sites: 12,
                side_ms: 100.0,
                seed: 4,
            },
            workload: WorkloadSpec {
                locations: 4,
                per_location: 2,
                demand: DemandModel::Zipf(0.7),
                flash: Some(FlashCrowd {
                    phase: 1,
                    focus: 0,
                    boost: 4.0,
                }),
            },
            failures: FailurePlan {
                events: vec![FailureEvent {
                    phase: 1,
                    element: 0,
                    multiplier: 10.0,
                }],
                reoptimize: true,
                fault: None,
            },
            pipeline: crate::spec::PipelineSpec {
                system: "grid:2".to_string(),
                phases: 2,
                requests: 30,
                warmup: 5,
                seed: 9,
                tolerance: 0.25,
                ..crate::spec::PipelineSpec::default()
            },
        }
    }

    #[test]
    fn runs_end_to_end_and_cross_checks() {
        let report = ScenarioRunner::new().run(&small_spec()).unwrap();
        assert_eq!(report.phases.len(), 2);
        assert!(report.phases[0].predicted_floor_ms > 0.0);
        assert!(report.phases[1].flash);
        assert_eq!(report.phases[1].failed_elements, 1);
        assert!(report.pass, "cross-check failed: {report}");
        // The report renders without panicking and mentions the verdict.
        let text = report.to_string();
        assert!(text.contains("PASS"), "{text}");
    }

    #[test]
    fn reruns_are_bit_identical() {
        let runner = ScenarioRunner::new();
        let spec = small_spec();
        let a = runner.run(&spec).unwrap();
        let b = runner.run(&spec).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn matrix_matches_individual_runs() {
        let runner = ScenarioRunner::new();
        let mut second = small_spec();
        second.name = "unit-2".to_string();
        second.pipeline.seed = 77;
        let specs = vec![small_spec(), second];
        let matrix = runner.run_matrix(&specs).unwrap();
        assert_eq!(matrix.len(), 2);
        assert_eq!(matrix[0], runner.run(&specs[0]).unwrap());
        assert_eq!(matrix[1], runner.run(&specs[1]).unwrap());
        assert_ne!(
            matrix[0].phases[0].des_response_ms,
            matrix[1].phases[0].des_response_ms
        );
    }

    #[test]
    fn colgen_mode_matches_default_and_reports_pricing() {
        let runner = ScenarioRunner::new();
        let spec = small_spec();
        let mut cg = small_spec();
        cg.pipeline.colgen = true;
        let full = runner.run(&spec).unwrap();
        let colgen = runner.run(&cg).unwrap();
        // Same optimum by linearity of the location-weighted master;
        // identical DES trajectories because the chosen capacities agree.
        assert!(
            (full.lp_delay_ms - colgen.lp_delay_ms).abs() <= 1e-6 * full.lp_delay_ms.max(1.0),
            "full {} vs colgen {}",
            full.lp_delay_ms,
            colgen.lp_delay_ms
        );
        assert_eq!(full.capacity, colgen.capacity);
        assert!(full.pricing.is_none());
        let pricing = colgen.pricing.expect("colgen run must report pricing");
        assert!(pricing.columns_in_master > 0);
        assert!(pricing.columns_in_master <= pricing.total_columns);
        assert!(pricing.master_resolves > 0);
        assert!(pricing.oracle_passes > 0);
        assert!(colgen.to_string().contains("pricing:"), "{colgen}");
        assert!(!full.to_string().contains("pricing:"), "{full}");
    }

    #[test]
    fn colgen_reruns_are_bit_identical() {
        let runner = ScenarioRunner::new();
        let mut spec = small_spec();
        spec.pipeline.colgen = true;
        let a = runner.run(&spec).unwrap();
        let b = runner.run(&spec).unwrap();
        assert_eq!(a, b);
    }

    fn aggregated_spec() -> ScenarioSpec {
        let mut spec = small_spec();
        spec.pipeline.colgen = true;
        spec.pipeline.engine = crate::spec::EngineSelection::Uniform(SimEngine::Aggregated);
        spec
    }

    #[test]
    fn aggregated_scenario_tracks_exact_within_tolerance() {
        let runner = ScenarioRunner::new();
        let mut spec = aggregated_spec();
        spec.pipeline.exact_compare = true;
        let report = runner.run(&spec).unwrap();
        assert!(report.pass, "aggregated cross-checks failed:\n{report}");
        for p in &report.phases {
            assert_eq!(p.engine, SimEngine::Aggregated);
            let err = p.exact_compare_rel_error.expect("compare ran");
            assert!(
                err <= spec.pipeline.tolerance,
                "phase {} diverged {err:.3} from exact",
                p.phase
            );
        }
        // The rendered report names the engine and the comparison.
        let text = report.to_string();
        assert!(text.contains("agg"), "{text}");
        assert!(text.contains("exact-compare:"), "{text}");
    }

    #[test]
    fn aggregated_reruns_are_bit_identical() {
        // The aggregated engine draws no random numbers, so whole-report
        // equality must hold across reruns (thread-count invariance is
        // pinned end-to-end by the scenario regression suite).
        let runner = ScenarioRunner::new();
        let spec = aggregated_spec();
        let a = runner.run(&spec).unwrap();
        let b = runner.run(&spec).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn fault_tolerant_phase_reports_counters() {
        // The injected failure is a crash (CRASH_MULTIPLIER), so the
        // fault-tolerant clients must observe timeouts and fail over.
        let mut spec = small_spec();
        spec.failures.events[0].multiplier = crate::spec::CRASH_MULTIPLIER;
        spec.failures.reoptimize = false;
        spec.failures.fault = Some(qp_protocol::FaultConfig {
            crash_threshold: crate::spec::CRASH_MULTIPLIER,
            detection_latency_ms: 400.0,
            ..qp_protocol::FaultConfig::default()
        });
        // The crash makes the measured floor diverge from the omniscient
        // prediction; this test is about the counters, not the verdict.
        spec.pipeline.tolerance = 10.0;
        let report = ScenarioRunner::new().run(&spec).unwrap();
        let crash_phase = &report.phases[1];
        assert!(crash_phase.fault_tolerant);
        assert!(crash_phase.timeouts > 0, "{report}");
        assert!(crash_phase.retries > 0, "{report}");
        let nominal = &report.phases[0];
        assert_eq!(nominal.timeouts, 0);
        assert_eq!(nominal.retries, 0);
        assert!(report.to_string().contains("fault-tolerant:"), "{report}");
    }

    #[test]
    fn fault_config_without_crashes_changes_nothing() {
        let mut spec = small_spec();
        spec.failures.events.clear();
        let base = ScenarioRunner::new().run(&spec).unwrap();
        spec.failures.fault = Some(qp_protocol::FaultConfig {
            crash_threshold: crate::spec::CRASH_MULTIPLIER,
            ..qp_protocol::FaultConfig::default()
        });
        let ft = ScenarioRunner::new().run(&spec).unwrap();
        for (a, b) in base.phases.iter().zip(&ft.phases) {
            assert_eq!(a.des_response_ms, b.des_response_ms);
            assert_eq!(a.des_floor_ms, b.des_floor_ms);
            assert_eq!(a.completed_requests, b.completed_requests);
            assert_eq!(b.timeouts, 0);
            assert_eq!(b.retries, 0);
            assert_eq!(b.failovers, 0);
        }
    }

    #[test]
    fn exact_compare_subsamples_when_capped() {
        let runner = ScenarioRunner::new();
        let mut spec = aggregated_spec();
        spec.pipeline.exact_compare = true;
        spec.pipeline.exact_compare_sample = 4; // population is 4 × 2 = 8
        let report = runner.run(&spec).unwrap();
        for p in &report.phases {
            // 4 locations → one client each under the cap.
            assert_eq!(p.exact_compare_sampled, Some(4));
            assert!(p.exact_compare_rel_error.is_some());
        }
        assert!(report.to_string().contains("sampled clients"), "{report}");
        // A cap at or above the population compares in full.
        spec.pipeline.exact_compare_sample = 8;
        let full = runner.run(&spec).unwrap();
        assert!(full
            .phases
            .iter()
            .all(|p| p.exact_compare_sampled.is_none()));
    }

    #[test]
    fn carried_queues_change_the_post_flash_phase() {
        // Phase 1's flash crowd leaves backlog behind; with carry-queues
        // a following phase starts loaded. Add a third nominal phase and
        // compare its response with and without carrying.
        let mut spec = aggregated_spec();
        spec.pipeline.phases = 3;
        spec.pipeline.warmup = 0; // keep the carried transient measurable
        let runner = ScenarioRunner::new();
        let cold = runner.run(&spec).unwrap();
        spec.pipeline.carry_queues = true;
        let carried = runner.run(&spec).unwrap();
        assert_eq!(cold.phases[0], carried.phases[0], "phase 0 has no inflow");
        assert!(
            carried.phases[2].des_response_ms >= cold.phases[2].des_response_ms,
            "carried {} vs cold {}",
            carried.phases[2].des_response_ms,
            cold.phases[2].des_response_ms
        );
    }

    #[test]
    fn mixed_engine_phases_dispatch_per_phase() {
        let mut spec = aggregated_spec();
        spec.pipeline.engine =
            crate::spec::EngineSelection::PerPhase(vec![SimEngine::Exact, SimEngine::Aggregated]);
        let report = ScenarioRunner::new().run(&spec).unwrap();
        assert_eq!(report.phases[0].engine, SimEngine::Exact);
        assert_eq!(report.phases[1].engine, SimEngine::Aggregated);
    }

    #[test]
    fn aggregated_without_colgen_is_rejected() {
        let mut spec = aggregated_spec();
        spec.pipeline.colgen = false;
        let err = ScenarioRunner::new().run(&spec).unwrap_err();
        let ScenarioError::Invalid(msg) = err else {
            panic!("wrong error: {err}");
        };
        assert!(msg.contains("colgen"), "{msg}");
    }

    #[test]
    fn collapse_preserves_distributions() {
        let strategy =
            StrategyMatrix::from_rows(vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![0.5, 0.5]])
                .unwrap();
        // Clients 0,1 at location 0; client 2 at location 1; location 2 empty.
        let rows = collapse_rows(&strategy, &[0, 0, 1], 3, 2).unwrap();
        assert_eq!(rows.row(0), &[0.5, 0.5]);
        assert_eq!(rows.row(1), &[0.5, 0.5]);
        assert_eq!(rows.row(2), &[0.5, 0.5]);
    }

    #[test]
    fn oversized_location_count_is_rejected_not_clamped() {
        // Silently shrinking the population would run a different
        // scenario than declared (and could drop the flash crowd).
        let mut spec = small_spec();
        spec.workload.locations = 20; // > 12 sites
        spec.workload.flash = None;
        let err = ScenarioRunner::new().run(&spec).unwrap_err();
        let ScenarioError::Invalid(msg) = err else {
            panic!("wrong error: {err}");
        };
        assert!(msg.contains("20 client locations"), "{msg}");
    }

    #[test]
    fn oversized_universe_is_rejected() {
        let mut spec = small_spec();
        spec.pipeline.system = "grid:5".to_string(); // 25 > 12 sites
        assert!(matches!(
            ScenarioRunner::new().run(&spec),
            Err(ScenarioError::Invalid(_))
        ));
    }
}
