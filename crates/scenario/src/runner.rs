//! The end-to-end scenario pipeline: topology → placement → strategy LP
//! → capacity selection → per-phase DES validation → cross-check.

use qp_core::capacity::{capacity_sweep, CapacityProfile};
use qp_core::response::evaluate_matrix_placed;
use qp_core::strategy_lp::{CapacitySweepSolver, StrategyLpOutcome};
use qp_core::{CoreError, EvalContext, Placement, ResponseModel};
use qp_par::ParPool;
use qp_protocol::{simulate, ClientPopulation, ProtocolConfig, QuorumChoice};
use qp_quorum::{Quorum, StrategyMatrix};
use qp_topology::{Network, NodeId};

use crate::report::{PhaseReport, ScenarioReport};
use crate::spec::{parse_system, CapacityChoice, DemandModel, ScenarioSpec};
use crate::ScenarioError;

/// Executes [`ScenarioSpec`]s through the full pipeline.
///
/// Every step is a pure function of the spec: topology generation,
/// placement search, LP solves, and the DES all run from fixed seeds, so
/// a scenario's report is bit-identical across runs and thread counts
/// (the matrix fan-out and the capacity sweep ride
/// [`qp_par::ParPool`], whose results are input-ordered by contract).
#[derive(Debug, Clone, Copy, Default)]
pub struct ScenarioRunner;

impl ScenarioRunner {
    /// A runner with default settings.
    pub fn new() -> Self {
        ScenarioRunner
    }

    /// Runs a matrix of scenarios on the global worker pool, reports in
    /// spec order.
    ///
    /// # Errors
    ///
    /// The error of the lowest-indexed failing scenario.
    pub fn run_matrix(&self, specs: &[ScenarioSpec]) -> Result<Vec<ScenarioReport>, ScenarioError> {
        ParPool::global()
            .run(specs.len(), |i| self.run(&specs[i]))
            .into_iter()
            .collect()
    }

    /// Runs one scenario end to end.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::Invalid`] for semantic problems (validated up
    /// front); topology/LP/DES failures propagate with their layer's
    /// error type.
    pub fn run(&self, spec: &ScenarioSpec) -> Result<ScenarioReport, ScenarioError> {
        spec.validate()?;
        let pipeline = &spec.pipeline;

        // 1. Topology and quorum system.
        let net = spec.topology.build()?;
        let sys = parse_system(&pipeline.system)?;
        if sys.universe_size() > net.len() {
            return Err(ScenarioError::Invalid(format!(
                "universe of {} exceeds the {}-site network",
                sys.universe_size(),
                net.len()
            )));
        }

        // 2. Placement and client population. Location count must fit
        // the network — silently shrinking it would run a different
        // scenario than declared (and could drop the flash crowd).
        let placement = pipeline.placement.compute(&net, &sys)?;
        let locations = spec.workload.locations;
        if locations > net.len() {
            return Err(ScenarioError::Invalid(format!(
                "{locations} client locations exceed the {}-site network",
                net.len()
            )));
        }
        let uniform_pop = ClientPopulation::representative(
            &net,
            &sys,
            &placement,
            locations,
            spec.workload.per_location,
        );
        let nominal = match spec.workload.demand {
            DemandModel::Uniform => uniform_pop,
            DemandModel::Zipf(theta) => ClientPopulation::zipf(
                uniform_pop.locations().to_vec(),
                spec.workload.per_location,
                theta,
            ),
        };

        // 3. The strategy LP over the demand-weighted client list: each
        // location appears once per client it hosts, so the LP's uniform
        // client average *is* the demand-weighted average.
        let quorums = sys.enumerate(pipeline.quorum_limit)?;
        let lp_clients = nominal.client_locations();
        let ctx = EvalContext::new(&net, &lp_clients);
        let pq = ctx.place(&placement, &quorums);
        let solver = CapacitySweepSolver::new(&pq)?;
        let model = ResponseModel::from_demand(pipeline.op_time_ms, pipeline.demand);
        let mut lp_pivots = solver.base_stats().iterations;

        // 4. Capacity selection.
        let n = net.len();
        let (base_outcome, base_caps, capacity_label) = match pipeline.capacity {
            CapacityChoice::Sweep { steps } => {
                let l_opt = sys.optimal_load().unwrap_or(0.5);
                let cs = capacity_sweep(l_opt, steps);
                let solved = ParPool::global().run(cs.len(), |i| {
                    let outcome = solver.solve_uniform(cs[i])?;
                    let eval = evaluate_matrix_placed(&pq, &outcome.strategy, model)?;
                    Ok::<_, CoreError>((outcome, eval))
                });
                let mut best: Option<(f64, StrategyLpOutcome, f64)> = None;
                for (c, outcome) in cs.iter().zip(solved) {
                    match outcome {
                        Ok((outcome, eval)) => {
                            lp_pivots += outcome.stats.iterations;
                            let better = best
                                .as_ref()
                                .is_none_or(|(_, _, r)| eval.avg_response_ms < *r);
                            if better {
                                best = Some((*c, outcome, eval.avg_response_ms));
                            }
                        }
                        Err(CoreError::Infeasible) => continue,
                        Err(e) => return Err(e.into()),
                    }
                }
                let (c, outcome, _) = best.ok_or(CoreError::Infeasible)?;
                let label = format!("sweep({steps}) → c* = {c:.3}");
                (outcome, CapacityProfile::uniform(n, c), label)
            }
            CapacityChoice::Fixed(c) => {
                let outcome = solver.solve_uniform(c)?;
                lp_pivots += outcome.stats.iterations;
                (
                    outcome,
                    CapacityProfile::uniform(n, c),
                    format!("fixed {c:.3}"),
                )
            }
            CapacityChoice::LoadProportional { beta, gamma } => {
                let unconstrained = solver.solve_profile(&CapacityProfile::unbounded(n))?;
                lp_pivots += unconstrained.stats.iterations;
                let loads = evaluate_matrix_placed(
                    &pq,
                    &unconstrained.strategy,
                    ResponseModel::network_delay_only(),
                )?
                .node_loads;
                let caps = CapacityProfile::load_proportional(
                    &loads,
                    &placement.support_set(),
                    beta,
                    gamma,
                )?;
                let outcome = solver.solve_profile(&caps)?;
                lp_pivots += outcome.stats.iterations;
                (
                    outcome,
                    caps,
                    format!("load-proportional [{beta}, {gamma}]"),
                )
            }
            CapacityChoice::MarginalValue { beta, gamma } => {
                let reference = solver.solve_uniform(gamma)?;
                lp_pivots += reference.stats.iterations;
                let prices: Vec<f64> = reference
                    .capacity_duals
                    .iter()
                    .map(|&d| (-d).max(0.0))
                    .collect();
                let caps = CapacityProfile::marginal_value(
                    &prices,
                    &placement.support_set(),
                    beta,
                    gamma,
                )?;
                let outcome = solver.solve_profile(&caps)?;
                lp_pivots += outcome.stats.iterations;
                (outcome, caps, format!("marginal-value [{beta}, {gamma}]"))
            }
        };
        let base_eval = evaluate_matrix_placed(&pq, &base_outcome.strategy, model)?;
        let base_rows = collapse_rows(
            &base_outcome.strategy,
            &nominal.location_indices(),
            locations,
            quorums.len(),
        )?;

        // 5. Per-phase DES validation.
        let universe = sys.universe_size();
        let mut phases = Vec::with_capacity(pipeline.phases);
        for phase in 0..pipeline.phases {
            // `validate()` guarantees `focus < locations`.
            let flash = spec.workload.flash.filter(|f| f.phase == phase);
            let pop = match flash {
                Some(f) => nominal.boosted(f.focus, f.boost),
                None => nominal.clone(),
            };
            let mults = spec.failures.multipliers_for_phase(phase, universe);
            let failed_elements = mults
                .as_ref()
                .map_or(0, |m| m.iter().filter(|&&x| x != 1.0).count());

            // Optional mid-run re-optimization: the strategy LP re-solves
            // with degraded sites' capacity scaled down by their slowdown.
            // If the tuned capacities cannot absorb the shifted load,
            // retry in survival mode — healthy nodes relaxed to full
            // capacity — before falling back to the nominal strategy.
            let mut reoptimized = false;
            let rows = if failed_elements > 0 && spec.failures.reoptimize {
                let phase_mults = mults.as_deref().expect("failures present");
                let mut outcome = None;
                for caps in [
                    scale_caps_for_failures(&base_caps, &placement, phase_mults),
                    scale_caps_for_failures(
                        &CapacityProfile::uniform(n, 1.0),
                        &placement,
                        phase_mults,
                    ),
                ] {
                    match solver.solve_profile(&caps) {
                        Ok(o) => {
                            outcome = Some(o);
                            break;
                        }
                        Err(CoreError::Infeasible) => continue,
                        Err(e) => return Err(e.into()),
                    }
                }
                match outcome {
                    Some(outcome) => {
                        lp_pivots += outcome.stats.iterations;
                        reoptimized = true;
                        collapse_rows(
                            &outcome.strategy,
                            &nominal.location_indices(),
                            locations,
                            quorums.len(),
                        )?
                    }
                    // Even full healthy capacity cannot serve around the
                    // failures; keep the nominal strategy for the phase.
                    None => base_rows.clone(),
                }
            } else {
                base_rows.clone()
            };

            let predicted_floor_ms = expected_floor_ms(
                &net,
                &placement,
                &quorums,
                &rows,
                &pop,
                pipeline.service_time_ms,
                mults.as_deref(),
            );

            let cfg = ProtocolConfig {
                service_time_ms: pipeline.service_time_ms,
                warmup_requests: pipeline.warmup,
                measured_requests: pipeline.requests,
                seed: qp_par::job_seed(pipeline.seed, phase),
                service_multipliers: mults,
                dedup_colocated: false,
            };
            let report = simulate(
                &net,
                &sys,
                &placement,
                &pop,
                QuorumChoice::Weighted {
                    quorums: quorums.clone(),
                    strategy: rows,
                },
                &cfg,
            )?;
            let rel_error = if predicted_floor_ms > 0.0 {
                (report.avg_network_delay_ms - predicted_floor_ms).abs() / predicted_floor_ms
            } else {
                0.0
            };
            let max_util = report
                .server_utilization
                .iter()
                .copied()
                .fold(0.0, f64::max);
            phases.push(PhaseReport {
                phase,
                flash: flash.is_some(),
                failed_elements,
                reoptimized,
                predicted_floor_ms,
                des_response_ms: report.avg_response_ms,
                des_floor_ms: report.avg_network_delay_ms,
                rel_error,
                completed_requests: report.completed_requests,
                max_server_utilization: max_util,
            });
        }

        // 6. Cross-check: every phase's measured floor must match the
        // prediction within tolerance (failure phases included — the
        // prediction folds the service multipliers in).
        let max_rel_error = phases.iter().map(|p| p.rel_error).fold(0.0, f64::max);
        let pass = max_rel_error <= pipeline.tolerance;

        Ok(ScenarioReport {
            name: spec.name.clone(),
            topology: spec.topology.describe(),
            sites: net.len(),
            system: sys.label(),
            placement_sites: placement
                .support_set()
                .iter()
                .map(|&v| net.label(v).to_string())
                .collect(),
            locations,
            total_clients: nominal.total_clients(),
            capacity: capacity_label,
            lp_delay_ms: base_outcome.delay_ms,
            lp_response_ms: base_eval.avg_response_ms,
            lp_pivots,
            phases,
            tolerance: pipeline.tolerance,
            max_rel_error,
            pass,
        })
    }
}

/// Collapses a per-client strategy (rows aligned with the flattened
/// client list) into a per-*location* strategy by averaging each
/// location's client rows — feasibility and the demand-weighted
/// objective are preserved because the LP is linear. Locations with no
/// clients get the uniform row (they are never sampled).
fn collapse_rows(
    strategy: &StrategyMatrix,
    location_indices: &[usize],
    locations: usize,
    num_quorums: usize,
) -> Result<StrategyMatrix, ScenarioError> {
    let mut rows = vec![vec![0.0; num_quorums]; locations];
    let mut counts = vec![0usize; locations];
    for (client, &loc) in location_indices.iter().enumerate() {
        for (acc, &p) in rows[loc].iter_mut().zip(strategy.row(client)) {
            *acc += p;
        }
        counts[loc] += 1;
    }
    for (row, &count) in rows.iter_mut().zip(&counts) {
        if count > 0 {
            let inv = 1.0 / count as f64;
            for p in row.iter_mut() {
                *p *= inv;
            }
        } else {
            let uniform = 1.0 / num_quorums as f64;
            row.fill(uniform);
        }
    }
    Ok(StrategyMatrix::from_rows(rows)?)
}

/// The expected idle-network floor of the weighted strategy: what the DES
/// floor converges to. Mirrors the simulator's accounting exactly — a
/// request's floor is `max` over contacted nodes of RTT plus the *summed*
/// service of the quorum elements hosted there (same-node messages
/// serialize even on an idle system), with per-element multipliers
/// applied.
fn expected_floor_ms(
    net: &Network,
    placement: &Placement,
    quorums: &[Quorum],
    rows: &StrategyMatrix,
    pop: &ClientPopulation,
    service_time_ms: f64,
    mults: Option<&[f64]>,
) -> f64 {
    let counts = pop.client_counts();
    let total: usize = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let mult = |u: usize| mults.map_or(1.0, |m| m[u]);
    let mut acc = 0.0;
    for (loc_idx, (&loc, &count)) in pop.locations().iter().zip(&counts).enumerate() {
        if count == 0 {
            continue;
        }
        let row = rows.row(loc_idx);
        let mut exp = 0.0;
        for (i, q) in quorums.iter().enumerate() {
            if row[i] == 0.0 {
                continue;
            }
            // Group the quorum's elements by hosting node, summing
            // service times per node.
            let mut by_node: Vec<(usize, f64)> = Vec::new();
            for u in q.iter() {
                let w = placement.node_of(u).index();
                let svc = service_time_ms * mult(u.index());
                match by_node.binary_search_by_key(&w, |&(n, _)| n) {
                    Ok(pos) => by_node[pos].1 += svc,
                    Err(pos) => by_node.insert(pos, (w, svc)),
                }
            }
            let floor = by_node
                .iter()
                .map(|&(w, svc)| net.distance(loc, NodeId::new(w)) + svc)
                .fold(f64::MIN, f64::max);
            exp += row[i] * floor;
        }
        acc += count as f64 * exp;
    }
    acc / total as f64
}

/// Scales a capacity profile down at nodes hosting failed elements: a
/// node whose worst co-located element runs `m×` slower keeps `1/m` of
/// its capacity — the failure-aware input to mid-run re-optimization.
fn scale_caps_for_failures(
    base: &CapacityProfile,
    placement: &Placement,
    mults: &[f64],
) -> CapacityProfile {
    let mut worst = vec![1.0f64; base.len()];
    for (u, &m) in mults.iter().enumerate() {
        let w = placement.node_of(qp_quorum::ElementId::new(u)).index();
        worst[w] = worst[w].max(m);
    }
    let values = (0..base.len())
        .map(|w| base.get(NodeId::new(w)) / worst[w])
        .collect();
    CapacityProfile::from_values(values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{FailureEvent, FailurePlan, FlashCrowd, TopologySource, WorkloadSpec};

    fn small_spec() -> ScenarioSpec {
        ScenarioSpec {
            name: "unit".to_string(),
            topology: TopologySource::Euclidean {
                sites: 12,
                side_ms: 100.0,
                seed: 4,
            },
            workload: WorkloadSpec {
                locations: 4,
                per_location: 2,
                demand: DemandModel::Zipf(0.7),
                flash: Some(FlashCrowd {
                    phase: 1,
                    focus: 0,
                    boost: 4.0,
                }),
            },
            failures: FailurePlan {
                events: vec![FailureEvent {
                    phase: 1,
                    element: 0,
                    multiplier: 10.0,
                }],
                reoptimize: true,
            },
            pipeline: crate::spec::PipelineSpec {
                system: "grid:2".to_string(),
                phases: 2,
                requests: 30,
                warmup: 5,
                seed: 9,
                tolerance: 0.25,
                ..crate::spec::PipelineSpec::default()
            },
        }
    }

    #[test]
    fn runs_end_to_end_and_cross_checks() {
        let report = ScenarioRunner::new().run(&small_spec()).unwrap();
        assert_eq!(report.phases.len(), 2);
        assert!(report.phases[0].predicted_floor_ms > 0.0);
        assert!(report.phases[1].flash);
        assert_eq!(report.phases[1].failed_elements, 1);
        assert!(report.pass, "cross-check failed: {report}");
        // The report renders without panicking and mentions the verdict.
        let text = report.to_string();
        assert!(text.contains("PASS"), "{text}");
    }

    #[test]
    fn reruns_are_bit_identical() {
        let runner = ScenarioRunner::new();
        let spec = small_spec();
        let a = runner.run(&spec).unwrap();
        let b = runner.run(&spec).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn matrix_matches_individual_runs() {
        let runner = ScenarioRunner::new();
        let mut second = small_spec();
        second.name = "unit-2".to_string();
        second.pipeline.seed = 77;
        let specs = vec![small_spec(), second];
        let matrix = runner.run_matrix(&specs).unwrap();
        assert_eq!(matrix.len(), 2);
        assert_eq!(matrix[0], runner.run(&specs[0]).unwrap());
        assert_eq!(matrix[1], runner.run(&specs[1]).unwrap());
        assert_ne!(
            matrix[0].phases[0].des_response_ms,
            matrix[1].phases[0].des_response_ms
        );
    }

    #[test]
    fn collapse_preserves_distributions() {
        let strategy =
            StrategyMatrix::from_rows(vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![0.5, 0.5]])
                .unwrap();
        // Clients 0,1 at location 0; client 2 at location 1; location 2 empty.
        let rows = collapse_rows(&strategy, &[0, 0, 1], 3, 2).unwrap();
        assert_eq!(rows.row(0), &[0.5, 0.5]);
        assert_eq!(rows.row(1), &[0.5, 0.5]);
        assert_eq!(rows.row(2), &[0.5, 0.5]);
    }

    #[test]
    fn oversized_location_count_is_rejected_not_clamped() {
        // Silently shrinking the population would run a different
        // scenario than declared (and could drop the flash crowd).
        let mut spec = small_spec();
        spec.workload.locations = 20; // > 12 sites
        spec.workload.flash = None;
        let err = ScenarioRunner::new().run(&spec).unwrap_err();
        let ScenarioError::Invalid(msg) = err else {
            panic!("wrong error: {err}");
        };
        assert!(msg.contains("20 client locations"), "{msg}");
    }

    #[test]
    fn oversized_universe_is_rejected() {
        let mut spec = small_spec();
        spec.pipeline.system = "grid:5".to_string(); // 25 > 12 sites
        assert!(matches!(
            ScenarioRunner::new().run(&spec),
            Err(ScenarioError::Invalid(_))
        ));
    }
}
