//! Declarative scenario specifications.
//!
//! A [`ScenarioSpec`] bundles everything the pipeline needs — topology
//! source, demand model, failure plan, and pipeline configuration — and
//! can be built in code (plain structs with [`Default`]s) or parsed from
//! a small TOML-like text format:
//!
//! ```text
//! name = ts-flash
//!
//! [topology]
//! source = transit-stub     # transit-stub | hierarchical | planetlab50
//! seed = 7                  # | daxlist161 | euclidean | file
//! transit-domains = 2
//! transit-size = 2
//! stubs-per-transit = 1
//! stub-size = 3
//! sparse-apsp = false        # skip the dense metric closure (large nets)
//!
//! [workload]
//! locations = 6
//! per-location = 3
//! demand = zipf:0.8         # uniform | zipf:THETA
//! flash-phase = 1           # flash crowd: demand surges toward one
//! flash-focus = 0           # location for one phase
//! flash-boost = 5
//!
//! [failures]
//! slowdown = 2:0:20         # phase:element:multiplier (repeatable)
//! crash = 2:4               # phase:element — a 64x slowdown
//! reoptimize = true         # re-run the strategy LP mid-run
//! fault-tolerant = true     # clients time out, retry, and fail over
//! timeout-ms = 100          # per-attempt timeout (fault-tolerant only)
//! max-retries = 3           # retry budget per logical request
//! backoff-ms = 10           # exponential backoff base
//! backoff-jitter = 0.5      # deterministic jitter fraction in [0, 1]
//! detect-ms = 250           # failure-detector latency
//!
//! [pipeline]
//! system = grid:3
//! placement = best          # best | balanced | shell:ANCHOR | ball:ANCHOR
//! capacity = sweep:4        # sweep[:STEPS] | fixed:C |
//! phases = 3                # load-proportional:B:G | marginal-value:B:G
//! requests = 60
//! seed = 42
//! tolerance = 0.1
//! colgen = false            # strategy LP via column generation
//! engine = exact            # exact | aggregated | per-phase list
//! carry-queues = false      # carry residual queues across phases
//! exact-compare = false     # also run exact for aggregated phases
//! exact-compare-sample = 0  # subsample the compare population (0 = all)
//! ```
//!
//! Lines are `key = value` under `[section]` headers; `#` starts a
//! comment; unknown sections or keys are errors (specs fail loudly, not
//! silently).

use qp_core::one_to_one::PlacementAlgorithm;
use qp_protocol::{FaultConfig, SimEngine};
use qp_quorum::{MajorityKind, QuorumSystem};
use qp_topology::datasets::{HierarchicalConfig, TransitStubConfig};
use qp_topology::{io as topo_io, Network};

use crate::ScenarioError;

/// The service-time multiplier a `crash = phase:element` entry applies: a
/// crashed site still answers (the closed-loop protocol needs a full
/// quorum of replies) but 64× slower — slow enough to wreck any quorum
/// that touches it, finite enough to keep the simulation horizon finite.
pub const CRASH_MULTIPLIER: f64 = 64.0;

/// Where the scenario's network comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum TopologySource {
    /// A built-in synthetic dataset: `planetlab50` or `daxlist161`.
    Dataset(String),
    /// An RTT matrix file in the `qp_topology::io` text format.
    File(String),
    /// The GT-ITM-style transit-stub generator.
    TransitStub {
        /// Generator configuration.
        config: TransitStubConfig,
        /// Generator seed.
        seed: u64,
    },
    /// The tree-of-clusters hierarchical generator.
    Hierarchical {
        /// Generator configuration.
        config: HierarchicalConfig,
        /// Generator seed.
        seed: u64,
    },
    /// Uniform random points in a square (tests and smoke runs).
    Euclidean {
        /// Number of sites.
        sites: usize,
        /// Square side, milliseconds.
        side_ms: f64,
        /// Generator seed.
        seed: u64,
    },
}

impl TopologySource {
    /// Builds the network.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::Invalid`] for an unknown dataset name;
    /// [`ScenarioError::Topology`] if a file fails to read or parse.
    pub fn build(&self) -> Result<Network, ScenarioError> {
        match self {
            TopologySource::Dataset(name) => match name.as_str() {
                "planetlab50" => Ok(qp_topology::datasets::planetlab_50()),
                "daxlist161" => Ok(qp_topology::datasets::daxlist_161()),
                other => Err(ScenarioError::Invalid(format!(
                    "unknown dataset `{other}` (expected planetlab50 or daxlist161)"
                ))),
            },
            TopologySource::File(path) => Ok(topo_io::read_matrix_file(path)?),
            TopologySource::TransitStub { config, seed } => Ok(config.generate(*seed)),
            TopologySource::Hierarchical { config, seed } => Ok(config.generate(*seed)),
            TopologySource::Euclidean {
                sites,
                side_ms,
                seed,
            } => Ok(qp_topology::datasets::euclidean_random(
                *sites, *side_ms, *seed,
            )),
        }
    }

    /// Checks generator parameters up front, so a bad spec fails with a
    /// [`ScenarioError`] instead of reaching a generator's `assert!`
    /// (user input must never panic the CLI).
    ///
    /// The conditions mirror (and slightly tighten, e.g. finiteness) the
    /// `generate` asserts of the `qp_topology::datasets` config types;
    /// when a generator grows a parameter, guard it here too — the spec
    /// tests pin every rejection class.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::Invalid`] naming the offending parameter.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        let invalid = |msg: String| Err(ScenarioError::Invalid(msg));
        match self {
            TopologySource::Dataset(_) | TopologySource::File(_) => Ok(()),
            TopologySource::TransitStub { config, .. } => {
                if config.transit_domains == 0 || config.transit_size == 0 {
                    return invalid("transit-stub needs at least one transit router".into());
                }
                if config.stubs_per_transit == 0 || config.stub_size == 0 {
                    return invalid("transit-stub needs at least one stub site".into());
                }
                for (lo, hi) in [
                    config.inter_transit_ms,
                    config.intra_transit_ms,
                    config.transit_stub_ms,
                    config.intra_stub_ms,
                ] {
                    if !(lo > 0.0 && hi >= lo && hi.is_finite()) {
                        return invalid(format!("invalid transit-stub delay range [{lo}, {hi}]"));
                    }
                }
                if !(config.jitter_frac.is_finite() && config.jitter_frac >= 0.0) {
                    return invalid("jitter must be nonnegative".into());
                }
                Ok(())
            }
            TopologySource::Hierarchical { config, .. } => {
                if config.branching.is_empty() || config.branching.contains(&0) {
                    return invalid("hierarchical branching factors must be positive".into());
                }
                if config.level_ms.len() != config.branching.len() {
                    return invalid(format!(
                        "branching has {} levels but level-ms has {}",
                        config.branching.len(),
                        config.level_ms.len()
                    ));
                }
                if config.level_ms.iter().any(|&d| !(d > 0.0 && d.is_finite())) {
                    return invalid("level-ms delays must be positive".into());
                }
                if !(config.jitter_frac.is_finite() && config.jitter_frac >= 0.0) {
                    return invalid("jitter must be nonnegative".into());
                }
                Ok(())
            }
            TopologySource::Euclidean { sites, side_ms, .. } => {
                if *sites == 0 {
                    return invalid("euclidean needs at least one site".into());
                }
                if !(*side_ms > 0.0 && side_ms.is_finite()) {
                    return invalid("euclidean side-ms must be positive".into());
                }
                Ok(())
            }
        }
    }

    /// A one-line human-readable description for reports.
    pub fn describe(&self) -> String {
        match self {
            TopologySource::Dataset(name) => format!("dataset {name}"),
            TopologySource::File(path) => format!("file {path}"),
            TopologySource::TransitStub { config, seed } => format!(
                "transit-stub {}d×{}r + {}×{} stubs, seed {seed}",
                config.transit_domains,
                config.transit_size,
                config.stubs_per_transit,
                config.stub_size
            ),
            TopologySource::Hierarchical { config, seed } => {
                format!("hierarchical {:?}, seed {seed}", config.branching)
            }
            TopologySource::Euclidean {
                sites,
                side_ms,
                seed,
            } => format!("euclidean {sites} sites in {side_ms} ms, seed {seed}"),
        }
    }
}

/// How client demand spreads over the chosen locations.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum DemandModel {
    /// Equal demand everywhere (the historical behavior).
    #[default]
    Uniform,
    /// Zipf-skewed demand: location `i` gets weight `1/(i+1)^θ`.
    Zipf(f64),
}

/// A one-phase demand surge toward a single location.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlashCrowd {
    /// The phase (0-based) during which the crowd surges.
    pub phase: usize,
    /// Index (into the population's location list) of the hot location.
    pub focus: usize,
    /// Weight multiplier applied to the hot location during the phase.
    pub boost: f64,
}

/// The workload half of a scenario: who the clients are and how demand
/// is distributed.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Number of representative client locations.
    pub locations: usize,
    /// Nominal clients per location (total = `locations × per_location`).
    pub per_location: usize,
    /// Demand distribution over locations.
    pub demand: DemandModel,
    /// Optional flash-crowd surge.
    pub flash: Option<FlashCrowd>,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            locations: 8,
            per_location: 4,
            demand: DemandModel::Uniform,
            flash: None,
        }
    }
}

/// One failure-injection entry: during `phase`, universe element
/// `element`'s service time is multiplied by `multiplier`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailureEvent {
    /// The phase (0-based) during which the failure is active.
    pub phase: usize,
    /// The universe element (logical server) affected.
    pub element: usize,
    /// Service-time multiplier (`> 1` slows the server down;
    /// [`CRASH_MULTIPLIER`] models a crash).
    pub multiplier: f64,
}

/// The failure half of a scenario: scheduled slowdowns/crashes plus the
/// mid-run recovery policy.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FailurePlan {
    /// Scheduled failures.
    pub events: Vec<FailureEvent>,
    /// Whether the runner re-optimizes the strategy LP (with the failed
    /// sites' capacity scaled down) for phases with active failures.
    pub reoptimize: bool,
    /// Client-side fault tolerance: when set, simulated clients time out,
    /// retry with deterministic backoff, and fail over around crashed
    /// elements (those at or beyond the config's `crash_threshold`, which
    /// the spec parser pins to [`CRASH_MULTIPLIER`]). `None` — the
    /// default — keeps the historical omniscient-client behavior, and
    /// every prior report stays bit-identical.
    pub fault: Option<FaultConfig>,
}

impl FailurePlan {
    /// Per-element service multipliers for `phase`, or `None` when no
    /// event is active (nominal service everywhere). Overlapping events
    /// on one element multiply.
    pub fn multipliers_for_phase(&self, phase: usize, universe: usize) -> Option<Vec<f64>> {
        let mut mults = vec![1.0; universe];
        let mut any = false;
        for e in &self.events {
            if e.phase == phase && e.element < universe {
                mults[e.element] *= e.multiplier;
                any = true;
            }
        }
        any.then_some(mults)
    }
}

/// How node capacities for the strategy LP are chosen.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CapacityChoice {
    /// The §7 uniform sweep: try `steps + 1` capacities from the
    /// system's optimal load up to 1 and keep the best response time.
    Sweep {
        /// Number of sweep intervals.
        steps: usize,
    },
    /// A fixed uniform capacity.
    Fixed(f64),
    /// The load-proportional heuristic over `[beta, gamma]`.
    LoadProportional {
        /// Lower capacity bound.
        beta: f64,
        /// Upper capacity bound.
        gamma: f64,
    },
    /// The marginal-value (LP dual price) heuristic over `[beta, gamma]`.
    MarginalValue {
        /// Lower capacity bound.
        beta: f64,
        /// Upper capacity bound.
        gamma: f64,
    },
}

impl Default for CapacityChoice {
    fn default() -> Self {
        CapacityChoice::Sweep { steps: 5 }
    }
}

/// Which DES engine each phase runs.
///
/// `engine = aggregated` in a spec applies one engine to every phase;
/// `engine = exact, aggregated` picks per phase (the list length must
/// equal `phases`).
#[derive(Debug, Clone, PartialEq)]
pub enum EngineSelection {
    /// Every phase uses the same engine.
    Uniform(SimEngine),
    /// Phase `p` uses entry `p`; validation pins the length to `phases`.
    PerPhase(Vec<SimEngine>),
}

impl Default for EngineSelection {
    fn default() -> Self {
        EngineSelection::Uniform(SimEngine::Exact)
    }
}

impl EngineSelection {
    /// The engine phase `phase` runs with.
    #[must_use]
    pub fn for_phase(&self, phase: usize) -> SimEngine {
        match self {
            EngineSelection::Uniform(e) => *e,
            EngineSelection::PerPhase(list) => list.get(phase).copied().unwrap_or_default(),
        }
    }

    /// Whether any phase runs aggregated.
    #[must_use]
    pub fn any_aggregated(&self) -> bool {
        match self {
            EngineSelection::Uniform(e) => *e == SimEngine::Aggregated,
            EngineSelection::PerPhase(list) => list.contains(&SimEngine::Aggregated),
        }
    }

    /// Whether every phase runs aggregated (the runner then skips the
    /// flattened per-client LP structures entirely).
    #[must_use]
    pub fn all_aggregated(&self) -> bool {
        match self {
            EngineSelection::Uniform(e) => *e == SimEngine::Aggregated,
            EngineSelection::PerPhase(list) => list.iter().all(|e| *e == SimEngine::Aggregated),
        }
    }
}

/// The pipeline half of a scenario: system, placement, capacity, LP
/// response model, DES shape, and the LP-vs-DES cross-check tolerance.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineSpec {
    /// Quorum-system spec, e.g. `grid:3` or `majority:fourfifths:2`.
    pub system: String,
    /// Placement construction.
    pub placement: PlacementAlgorithm,
    /// Capacity selection for the strategy LP.
    pub capacity: CapacityChoice,
    /// Per-request service time for the response model, ms.
    pub op_time_ms: f64,
    /// Client demand for the response model (`α = op_time × demand`).
    pub demand: f64,
    /// Number of execution phases (flash crowds and failures are
    /// scheduled per phase).
    pub phases: usize,
    /// Measured DES requests per client per phase.
    pub requests: usize,
    /// Warmup DES requests per client per phase.
    pub warmup: usize,
    /// Base seed; phase `p` simulates with `qp_par::job_seed(seed, p)`.
    pub seed: u64,
    /// DES per-request service time, ms.
    pub service_time_ms: f64,
    /// Relative tolerance of the LP-predicted vs DES-measured floor
    /// cross-check.
    pub tolerance: f64,
    /// Cap on quorum enumeration.
    pub quorum_limit: usize,
    /// Whether the strategy LP runs through the column-generation path
    /// (restricted master + pricing oracle over an exact demand-weighted
    /// location-level LP) instead of full enumeration. Off by default;
    /// the default path's reports are bit-identical to earlier releases.
    pub colgen: bool,
    /// Per-phase DES engine: the exact per-request engine or the
    /// aggregated fluid/hybrid engine (million-client scale). Aggregated
    /// phases require `colgen` (the pipeline then scores the strategy LP
    /// at location level instead of flattening per-client rows).
    pub engine: EngineSelection,
    /// Carry residual server queues across phase boundaries: each phase
    /// after the first starts its servers with the backlog the previous
    /// phase left behind, instead of idle.
    pub carry_queues: bool,
    /// For every aggregated phase, also run the exact engine and fold
    /// the relative disagreement into the pass/fail verdict (only
    /// sensible at sizes the exact engine can finish).
    pub exact_compare: bool,
    /// Cap on the population the `exact-compare` cross-check simulates.
    /// `0` (the default) compares over the full population; a positive
    /// cap runs *both* engines on a deterministic proportional subsample
    /// (per-location head-count scaled down, demand weights kept) so the
    /// cross-check stays affordable beyond ~10⁴ clients.
    pub exact_compare_sample: usize,
}

impl Default for PipelineSpec {
    fn default() -> Self {
        PipelineSpec {
            system: "grid:3".to_string(),
            placement: PlacementAlgorithm::BestClosest,
            capacity: CapacityChoice::default(),
            op_time_ms: 0.007,
            demand: 16000.0,
            phases: 1,
            requests: 60,
            warmup: 10,
            seed: 0,
            service_time_ms: 1.0,
            tolerance: 0.1,
            quorum_limit: 100_000,
            colgen: false,
            engine: EngineSelection::default(),
            carry_queues: false,
            exact_compare: false,
            exact_compare_sample: 0,
        }
    }
}

/// A complete declarative scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario name (reports lead with it).
    pub name: String,
    /// Where the network comes from.
    pub topology: TopologySource,
    /// Client locations and demand distribution.
    pub workload: WorkloadSpec,
    /// Failure schedule and recovery policy.
    pub failures: FailurePlan,
    /// Pipeline configuration.
    pub pipeline: PipelineSpec,
}

impl Default for ScenarioSpec {
    fn default() -> Self {
        ScenarioSpec {
            name: "unnamed".to_string(),
            topology: TopologySource::Euclidean {
                sites: 16,
                side_ms: 120.0,
                seed: 0,
            },
            workload: WorkloadSpec::default(),
            failures: FailurePlan::default(),
            pipeline: PipelineSpec::default(),
        }
    }
}

impl ScenarioSpec {
    /// Parses a spec from the text format (see the [module docs](self)).
    ///
    /// # Errors
    ///
    /// [`ScenarioError::Parse`] with a line number for malformed lines,
    /// unknown sections/keys, or unparsable values;
    /// [`ScenarioError::Invalid`] for semantic contradictions.
    pub fn parse(text: &str) -> Result<Self, ScenarioError> {
        let entries = RawEntries::scan(text)?;
        let mut spec = ScenarioSpec::default();

        if let Some((v, _)) = entries.take("", "name")? {
            spec.name = v;
        }
        spec.topology = parse_topology(&entries)?;
        spec.workload = parse_workload(&entries)?;
        spec.failures = parse_failures(&entries)?;
        spec.pipeline = parse_pipeline(&entries)?;
        entries.finish()?;
        spec.validate()?;
        Ok(spec)
    }

    /// Reads and parses a spec file.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::Parse`] if the file cannot be read; parse errors
    /// as for [`ScenarioSpec::parse`].
    pub fn from_file(path: impl AsRef<std::path::Path>) -> Result<Self, ScenarioError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|e| ScenarioError::Parse {
            line: 0,
            message: format!("reading {}: {e}", path.display()),
        })?;
        Self::parse(&text)
    }

    /// Semantic validation shared by the parser and in-code construction
    /// (the runner calls this before executing).
    ///
    /// # Errors
    ///
    /// [`ScenarioError::Invalid`] describing the first contradiction.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        self.topology.validate()?;
        let p = &self.pipeline;
        if p.phases == 0 {
            return Err(ScenarioError::Invalid("at least one phase required".into()));
        }
        if p.requests == 0 {
            return Err(ScenarioError::Invalid(
                "at least one measured request required".into(),
            ));
        }
        if !(p.tolerance.is_finite() && p.tolerance > 0.0) {
            return Err(ScenarioError::Invalid(
                "tolerance must be positive and finite".into(),
            ));
        }
        if self.workload.locations == 0 || self.workload.per_location == 0 {
            return Err(ScenarioError::Invalid(
                "workload needs at least one location and one client".into(),
            ));
        }
        if let DemandModel::Zipf(theta) = self.workload.demand {
            if !(theta.is_finite() && theta >= 0.0) {
                return Err(ScenarioError::Invalid(
                    "zipf exponent must be nonnegative".into(),
                ));
            }
            // The smallest weight is 1/locations^θ; an exponent large
            // enough to underflow it to zero would panic the weighted
            // population constructor downstream.
            let smallest = 1.0 / (self.workload.locations as f64).powf(theta);
            if !(smallest.is_finite() && smallest > 0.0) {
                return Err(ScenarioError::Invalid(format!(
                    "zipf exponent {theta} is too large for {} locations \
                     (demand weights underflow to zero)",
                    self.workload.locations
                )));
            }
        }
        if let Some(flash) = &self.workload.flash {
            if flash.phase >= p.phases {
                return Err(ScenarioError::Invalid(format!(
                    "flash phase {} out of range for {} phases",
                    flash.phase, p.phases
                )));
            }
            if flash.focus >= self.workload.locations {
                return Err(ScenarioError::Invalid(format!(
                    "flash focus {} out of range for {} locations",
                    flash.focus, self.workload.locations
                )));
            }
            if !(flash.boost.is_finite() && flash.boost > 0.0) {
                return Err(ScenarioError::Invalid(
                    "flash boost must be positive and finite".into(),
                ));
            }
        }
        // Failure targets are checked against the *declared* system so a
        // typo'd element index fails loudly instead of injecting nothing.
        let universe = parse_system(&p.system)?.universe_size();
        for e in &self.failures.events {
            if e.phase >= p.phases {
                return Err(ScenarioError::Invalid(format!(
                    "failure phase {} out of range for {} phases",
                    e.phase, p.phases
                )));
            }
            if e.element >= universe {
                return Err(ScenarioError::Invalid(format!(
                    "failure element {} out of range for the {universe}-element universe of `{}`",
                    e.element, p.system
                )));
            }
            if !(e.multiplier.is_finite() && e.multiplier > 0.0) {
                return Err(ScenarioError::Invalid(
                    "failure multiplier must be positive and finite".into(),
                ));
            }
        }
        if let EngineSelection::PerPhase(list) = &p.engine {
            if list.len() != p.phases {
                return Err(ScenarioError::Invalid(format!(
                    "engine list has {} entries for {} phases",
                    list.len(),
                    p.phases
                )));
            }
        }
        if p.engine.any_aggregated() && !p.colgen {
            return Err(ScenarioError::Invalid(
                "engine = aggregated requires colgen = true \
                 (aggregated pipelines score the strategy LP at location level)"
                    .into(),
            ));
        }
        if p.exact_compare && !p.engine.any_aggregated() {
            return Err(ScenarioError::Invalid(
                "exact-compare requires at least one aggregated phase".into(),
            ));
        }
        if p.exact_compare_sample > 0 && !p.exact_compare {
            return Err(ScenarioError::Invalid(
                "exact-compare-sample requires exact-compare = true".into(),
            ));
        }
        if let Some(f) = &self.failures.fault {
            if !(f.timeout_ms.is_finite() && f.timeout_ms > 0.0) {
                return Err(ScenarioError::Invalid(
                    "fault timeout-ms must be positive and finite".into(),
                ));
            }
            if !(f.backoff_base_ms.is_finite() && f.backoff_base_ms >= 0.0) {
                return Err(ScenarioError::Invalid(
                    "fault backoff-ms must be nonnegative and finite".into(),
                ));
            }
            if !(f.backoff_jitter.is_finite() && (0.0..=1.0).contains(&f.backoff_jitter)) {
                return Err(ScenarioError::Invalid(
                    "fault backoff-jitter must lie in [0, 1]".into(),
                ));
            }
            if !(f.detection_latency_ms.is_finite() && f.detection_latency_ms >= 0.0) {
                return Err(ScenarioError::Invalid(
                    "fault detect-ms must be nonnegative and finite".into(),
                ));
            }
        }
        match p.capacity {
            CapacityChoice::Sweep { .. } => {}
            CapacityChoice::Fixed(c) => {
                if !(c.is_finite() && c > 0.0) {
                    return Err(ScenarioError::Invalid(
                        "fixed capacity must be positive and finite".into(),
                    ));
                }
            }
            CapacityChoice::LoadProportional { beta, gamma }
            | CapacityChoice::MarginalValue { beta, gamma } => {
                if !(beta > 0.0 && gamma >= beta && gamma.is_finite()) {
                    return Err(ScenarioError::Invalid(
                        "capacity range needs 0 < beta <= gamma".into(),
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Parses a quorum-system spec: `grid:K` or `majority:KIND:T` with
/// `KIND ∈ {simple, twothirds, fourfifths}`.
///
/// # Errors
///
/// [`ScenarioError::Invalid`] for malformed specs;
/// [`ScenarioError::Quorum`] if construction fails (e.g. `grid:0`).
pub fn parse_system(spec: &str) -> Result<QuorumSystem, ScenarioError> {
    let parts: Vec<&str> = spec.split(':').collect();
    match parts.as_slice() {
        ["grid", k] => {
            let k: usize = k
                .parse()
                .map_err(|_| ScenarioError::Invalid(format!("bad grid size `{k}`")))?;
            Ok(QuorumSystem::grid(k)?)
        }
        ["majority", kind, t] => {
            let kind = match *kind {
                "simple" => MajorityKind::SimpleMajority,
                "twothirds" => MajorityKind::TwoThirds,
                "fourfifths" => MajorityKind::FourFifths,
                other => {
                    return Err(ScenarioError::Invalid(format!(
                        "unknown majority kind `{other}` (simple|twothirds|fourfifths)"
                    )))
                }
            };
            let t: usize = t
                .parse()
                .map_err(|_| ScenarioError::Invalid(format!("bad majority parameter `{t}`")))?;
            Ok(QuorumSystem::majority(kind, t)?)
        }
        _ => Err(ScenarioError::Invalid(format!(
            "bad system spec `{spec}` (expected grid:K or majority:KIND:T)"
        ))),
    }
}

/// Parses a placement spec: `best`, `balanced`, `shell:ANCHOR`, or
/// `ball:ANCHOR`.
///
/// # Errors
///
/// [`ScenarioError::Invalid`] for anything else.
pub fn parse_placement(spec: &str) -> Result<PlacementAlgorithm, ScenarioError> {
    let parts: Vec<&str> = spec.split(':').collect();
    match parts.as_slice() {
        ["best"] => Ok(PlacementAlgorithm::BestClosest),
        ["balanced"] => Ok(PlacementAlgorithm::BestBalanced),
        ["shell", anchor] => Ok(PlacementAlgorithm::GridShell {
            anchor: anchor
                .parse()
                .map_err(|_| ScenarioError::Invalid(format!("bad shell anchor `{anchor}`")))?,
        }),
        ["ball", anchor] => Ok(PlacementAlgorithm::Ball {
            anchor: anchor
                .parse()
                .map_err(|_| ScenarioError::Invalid(format!("bad ball anchor `{anchor}`")))?,
        }),
        _ => Err(ScenarioError::Invalid(format!(
            "bad placement `{spec}` (expected best, balanced, shell:ANCHOR, or ball:ANCHOR)"
        ))),
    }
}

// ---------------------------------------------------------------------
// The line-based parser.
// ---------------------------------------------------------------------

struct RawEntry {
    section: String,
    key: String,
    value: String,
    line: usize,
    used: std::cell::Cell<bool>,
}

struct RawEntries {
    entries: Vec<RawEntry>,
}

const SECTIONS: &[&str] = &["topology", "workload", "failures", "pipeline"];

impl RawEntries {
    fn scan(text: &str) -> Result<Self, ScenarioError> {
        let mut entries = Vec::new();
        let mut section = String::new();
        for (i, raw) in text.lines().enumerate() {
            let line = i + 1;
            let trimmed = strip_comment(raw).trim();
            if trimmed.is_empty() {
                continue;
            }
            if let Some(name) = trimmed.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
                if !SECTIONS.contains(&name) {
                    return Err(ScenarioError::Parse {
                        line,
                        message: format!(
                            "unknown section `[{name}]` (expected one of {})",
                            SECTIONS
                                .iter()
                                .map(|s| format!("[{s}]"))
                                .collect::<Vec<_>>()
                                .join(", ")
                        ),
                    });
                }
                section = name.to_string();
                continue;
            }
            let Some((key, value)) = trimmed.split_once('=') else {
                return Err(ScenarioError::Parse {
                    line,
                    message: format!("expected `key = value`, got `{trimmed}`"),
                });
            };
            let value = value.trim().trim_matches('"').to_string();
            entries.push(RawEntry {
                section: section.clone(),
                key: key.trim().to_string(),
                value,
                line,
                used: std::cell::Cell::new(false),
            });
        }
        Ok(RawEntries { entries })
    }

    /// Takes the single occurrence of `section.key`, if present.
    fn take(&self, section: &str, key: &str) -> Result<Option<(String, usize)>, ScenarioError> {
        let mut found: Option<(String, usize)> = None;
        for e in self
            .entries
            .iter()
            .filter(|e| e.section == section && e.key == key)
        {
            if found.is_some() {
                return Err(ScenarioError::Parse {
                    line: e.line,
                    message: format!("duplicate key `{key}`"),
                });
            }
            e.used.set(true);
            found = Some((e.value.clone(), e.line));
        }
        Ok(found)
    }

    /// Takes every occurrence of `section.key` (repeatable keys).
    fn take_all(&self, section: &str, key: &str) -> Vec<(String, usize)> {
        self.entries
            .iter()
            .filter(|e| e.section == section && e.key == key)
            .map(|e| {
                e.used.set(true);
                (e.value.clone(), e.line)
            })
            .collect()
    }

    /// Line of the first entry in `section`, if the section has any.
    fn first_line_in(&self, section: &str) -> Option<usize> {
        self.entries
            .iter()
            .find(|e| e.section == section)
            .map(|e| e.line)
    }

    /// Errors on the first entry no interpreter consumed.
    fn finish(&self) -> Result<(), ScenarioError> {
        for e in &self.entries {
            if !e.used.get() {
                let place = if e.section.is_empty() {
                    "top level".to_string()
                } else {
                    format!("[{}]", e.section)
                };
                return Err(ScenarioError::Parse {
                    line: e.line,
                    message: format!("unknown key `{}` in {place}", e.key),
                });
            }
        }
        Ok(())
    }
}

/// Strips a trailing `#` comment, honoring double quotes so values like
/// `path = "runs#3/net.rtt"` keep their `#`.
fn strip_comment(raw: &str) -> &str {
    let mut in_quotes = false;
    for (pos, c) in raw.char_indices() {
        match c {
            '"' => in_quotes = !in_quotes,
            '#' if !in_quotes => return &raw[..pos],
            _ => {}
        }
    }
    raw
}

fn num<T: std::str::FromStr>(value: &str, line: usize, what: &str) -> Result<T, ScenarioError> {
    value.parse().map_err(|_| ScenarioError::Parse {
        line,
        message: format!("{what}: `{value}` is not valid"),
    })
}

fn boolean(value: &str, line: usize, what: &str) -> Result<bool, ScenarioError> {
    match value {
        "true" => Ok(true),
        "false" => Ok(false),
        other => Err(ScenarioError::Parse {
            line,
            message: format!("{what}: `{other}` is not true/false"),
        }),
    }
}

fn parse_topology(entries: &RawEntries) -> Result<TopologySource, ScenarioError> {
    let Some((source, src_line)) = entries.take("topology", "source")? else {
        // Topology keys without a `source` would otherwise surface as a
        // misleading "unknown key" from `finish`; name the real problem.
        if let Some(line) = entries.first_line_in("topology") {
            return Err(ScenarioError::Parse {
                line,
                message: "a [topology] section requires `source = ...`".to_string(),
            });
        }
        // No [topology] section at all: keep the default.
        return Ok(ScenarioSpec::default().topology);
    };
    let seed_entry = entries.take("topology", "seed")?;
    let seed = match &seed_entry {
        Some((v, l)) => num::<u64>(v, *l, "seed")?,
        None => 0,
    };
    // Datasets and files are not seeded; silently ignoring a `seed` key
    // would let the user believe they are varying the topology.
    let reject_seed = || -> Result<(), ScenarioError> {
        match &seed_entry {
            Some((_, l)) => Err(ScenarioError::Parse {
                line: *l,
                message: format!("`seed` does not apply to source `{source}`"),
            }),
            None => Ok(()),
        }
    };
    match source.as_str() {
        "planetlab50" | "daxlist161" => {
            reject_seed()?;
            Ok(TopologySource::Dataset(source))
        }
        "file" => {
            reject_seed()?;
            let Some((path, _)) = entries.take("topology", "path")? else {
                return Err(ScenarioError::Parse {
                    line: src_line,
                    message: "source = file requires `path = ...`".to_string(),
                });
            };
            Ok(TopologySource::File(path))
        }
        "euclidean" => {
            let sites = match entries.take("topology", "sites")? {
                Some((v, l)) => num(&v, l, "sites")?,
                None => 16,
            };
            let side_ms = match entries.take("topology", "side-ms")? {
                Some((v, l)) => num(&v, l, "side-ms")?,
                None => 120.0,
            };
            Ok(TopologySource::Euclidean {
                sites,
                side_ms,
                seed,
            })
        }
        "transit-stub" => {
            let mut config = TransitStubConfig::default();
            if let Some((v, l)) = entries.take("topology", "transit-domains")? {
                config.transit_domains = num(&v, l, "transit-domains")?;
            }
            if let Some((v, l)) = entries.take("topology", "transit-size")? {
                config.transit_size = num(&v, l, "transit-size")?;
            }
            if let Some((v, l)) = entries.take("topology", "stubs-per-transit")? {
                config.stubs_per_transit = num(&v, l, "stubs-per-transit")?;
            }
            if let Some((v, l)) = entries.take("topology", "stub-size")? {
                config.stub_size = num(&v, l, "stub-size")?;
            }
            if let Some((v, l)) = entries.take("topology", "jitter")? {
                config.jitter_frac = num(&v, l, "jitter")?;
            }
            if let Some((v, l)) = entries.take("topology", "sparse-apsp")? {
                config.sparse_apsp = boolean(&v, l, "sparse-apsp")?;
            }
            Ok(TopologySource::TransitStub { config, seed })
        }
        "hierarchical" => {
            let mut config = HierarchicalConfig::default();
            if let Some((v, l)) = entries.take("topology", "branching")? {
                config.branching = v
                    .split('x')
                    .map(|p| num(p.trim(), l, "branching"))
                    .collect::<Result<_, _>>()?;
            }
            if let Some((v, l)) = entries.take("topology", "level-ms")? {
                config.level_ms = v
                    .split(',')
                    .map(|p| num(p.trim(), l, "level-ms"))
                    .collect::<Result<_, _>>()?;
            }
            if let Some((v, l)) = entries.take("topology", "jitter")? {
                config.jitter_frac = num(&v, l, "jitter")?;
            }
            if config.branching.len() != config.level_ms.len() {
                return Err(ScenarioError::Parse {
                    line: src_line,
                    message: format!(
                        "branching has {} levels but level-ms has {}",
                        config.branching.len(),
                        config.level_ms.len()
                    ),
                });
            }
            Ok(TopologySource::Hierarchical { config, seed })
        }
        other => Err(ScenarioError::Parse {
            line: src_line,
            message: format!(
                "unknown topology source `{other}` (transit-stub, hierarchical, \
                 planetlab50, daxlist161, euclidean, or file)"
            ),
        }),
    }
}

fn parse_workload(entries: &RawEntries) -> Result<WorkloadSpec, ScenarioError> {
    let mut w = WorkloadSpec::default();
    if let Some((v, l)) = entries.take("workload", "locations")? {
        w.locations = num(&v, l, "locations")?;
    }
    if let Some((v, l)) = entries.take("workload", "per-location")? {
        w.per_location = num(&v, l, "per-location")?;
    }
    if let Some((v, l)) = entries.take("workload", "demand")? {
        w.demand = if v == "uniform" {
            DemandModel::Uniform
        } else if let Some(theta) = v.strip_prefix("zipf:") {
            DemandModel::Zipf(num(theta, l, "zipf exponent")?)
        } else {
            return Err(ScenarioError::Parse {
                line: l,
                message: format!("unknown demand model `{v}` (uniform or zipf:THETA)"),
            });
        };
    }
    let phase = entries.take("workload", "flash-phase")?;
    let focus = entries.take("workload", "flash-focus")?;
    let boost = entries.take("workload", "flash-boost")?;
    w.flash = match (phase, focus, boost) {
        (None, None, None) => None,
        (Some((p, pl)), focus, boost) => Some(FlashCrowd {
            phase: num(&p, pl, "flash-phase")?,
            focus: match focus {
                Some((v, l)) => num(&v, l, "flash-focus")?,
                None => 0,
            },
            boost: match boost {
                Some((v, l)) => num(&v, l, "flash-boost")?,
                None => 4.0,
            },
        }),
        (None, Some((_, l)), _) | (None, None, Some((_, l))) => {
            return Err(ScenarioError::Parse {
                line: l,
                message: "flash-focus/flash-boost require flash-phase".to_string(),
            })
        }
    };
    Ok(w)
}

fn parse_failures(entries: &RawEntries) -> Result<FailurePlan, ScenarioError> {
    let mut plan = FailurePlan::default();
    // (phase, element) → line of the event that first claimed the target.
    // Two events on one target in one phase (slowdown twice, or a crash on
    // top of a slowdown) would silently compose into an unintended
    // multiplier; consistent with the strict unknown-key policy, reject at
    // the second declaration instead.
    let mut seen: std::collections::HashMap<(usize, usize), usize> =
        std::collections::HashMap::new();
    let mut claim = |phase: usize, element: usize, line: usize| match seen.entry((phase, element)) {
        std::collections::hash_map::Entry::Occupied(first) => Err(ScenarioError::Parse {
            line,
            message: format!(
                "duplicate failure target {phase}:{element} (first declared on line {})",
                first.get()
            ),
        }),
        std::collections::hash_map::Entry::Vacant(slot) => {
            slot.insert(line);
            Ok(())
        }
    };
    for (v, l) in entries.take_all("failures", "slowdown") {
        let parts: Vec<&str> = v.split(':').collect();
        let [phase, element, multiplier] = parts.as_slice() else {
            return Err(ScenarioError::Parse {
                line: l,
                message: format!("slowdown `{v}` is not phase:element:multiplier"),
            });
        };
        let phase = num(phase, l, "slowdown phase")?;
        let element = num(element, l, "slowdown element")?;
        claim(phase, element, l)?;
        plan.events.push(FailureEvent {
            phase,
            element,
            multiplier: num(multiplier, l, "slowdown multiplier")?,
        });
    }
    for (v, l) in entries.take_all("failures", "crash") {
        let parts: Vec<&str> = v.split(':').collect();
        let [phase, element] = parts.as_slice() else {
            return Err(ScenarioError::Parse {
                line: l,
                message: format!("crash `{v}` is not phase:element"),
            });
        };
        let phase = num(phase, l, "crash phase")?;
        let element = num(element, l, "crash element")?;
        claim(phase, element, l)?;
        plan.events.push(FailureEvent {
            phase,
            element,
            multiplier: CRASH_MULTIPLIER,
        });
    }
    if let Some((v, l)) = entries.take("failures", "reoptimize")? {
        plan.reoptimize = boolean(&v, l, "reoptimize")?;
    }
    plan.fault = parse_fault(entries)?;
    Ok(plan)
}

/// Parses the `[failures]` fault-tolerance keys into a [`FaultConfig`].
/// The tuning keys are only meaningful under `fault-tolerant = true`;
/// consistent with the strict unknown-key policy, a tuning key without
/// the enable flag is an error rather than a silent no-op.
fn parse_fault(entries: &RawEntries) -> Result<Option<FaultConfig>, ScenarioError> {
    let enabled = match entries.take("failures", "fault-tolerant")? {
        Some((v, l)) => boolean(&v, l, "fault-tolerant")?,
        None => false,
    };
    let mut fault = FaultConfig {
        crash_threshold: CRASH_MULTIPLIER,
        ..FaultConfig::default()
    };
    let mut tuned_line = None;
    let mut tune =
        |entry: Option<(String, usize)>, what: &str, slot: &mut f64| -> Result<(), ScenarioError> {
            if let Some((v, l)) = entry {
                *slot = num(&v, l, what)?;
                tuned_line.get_or_insert(l);
            }
            Ok(())
        };
    tune(
        entries.take("failures", "timeout-ms")?,
        "timeout-ms",
        &mut fault.timeout_ms,
    )?;
    tune(
        entries.take("failures", "backoff-ms")?,
        "backoff-ms",
        &mut fault.backoff_base_ms,
    )?;
    tune(
        entries.take("failures", "backoff-jitter")?,
        "backoff-jitter",
        &mut fault.backoff_jitter,
    )?;
    tune(
        entries.take("failures", "detect-ms")?,
        "detect-ms",
        &mut fault.detection_latency_ms,
    )?;
    if let Some((v, l)) = entries.take("failures", "max-retries")? {
        fault.max_retries = num(&v, l, "max-retries")?;
        tuned_line.get_or_insert(l);
    }
    match (enabled, tuned_line) {
        (true, _) => Ok(Some(fault)),
        (false, None) => Ok(None),
        (false, Some(line)) => Err(ScenarioError::Parse {
            line,
            message: "fault-tolerance keys require `fault-tolerant = true`".to_string(),
        }),
    }
}

fn parse_pipeline(entries: &RawEntries) -> Result<PipelineSpec, ScenarioError> {
    let mut p = PipelineSpec::default();
    if let Some((v, _)) = entries.take("pipeline", "system")? {
        p.system = v;
    }
    if let Some((v, l)) = entries.take("pipeline", "placement")? {
        p.placement = parse_placement(&v).map_err(|e| ScenarioError::Parse {
            line: l,
            message: e.to_string(),
        })?;
    }
    if let Some((v, l)) = entries.take("pipeline", "capacity")? {
        let parts: Vec<&str> = v.split(':').collect();
        p.capacity = match parts.as_slice() {
            ["sweep"] => CapacityChoice::Sweep { steps: 5 },
            ["sweep", steps] => CapacityChoice::Sweep {
                steps: num(steps, l, "sweep steps")?,
            },
            ["fixed", c] => CapacityChoice::Fixed(num(c, l, "fixed capacity")?),
            ["load-proportional", beta, gamma] => CapacityChoice::LoadProportional {
                beta: num(beta, l, "beta")?,
                gamma: num(gamma, l, "gamma")?,
            },
            ["marginal-value", beta, gamma] => CapacityChoice::MarginalValue {
                beta: num(beta, l, "beta")?,
                gamma: num(gamma, l, "gamma")?,
            },
            _ => {
                return Err(ScenarioError::Parse {
                    line: l,
                    message: format!(
                        "bad capacity `{v}` (sweep[:STEPS], fixed:C, \
                         load-proportional:B:G, or marginal-value:B:G)"
                    ),
                })
            }
        };
    }
    if let Some((v, l)) = entries.take("pipeline", "op-time")? {
        p.op_time_ms = num(&v, l, "op-time")?;
    }
    if let Some((v, l)) = entries.take("pipeline", "demand-scale")? {
        p.demand = num(&v, l, "demand-scale")?;
    }
    if let Some((v, l)) = entries.take("pipeline", "phases")? {
        p.phases = num(&v, l, "phases")?;
    }
    if let Some((v, l)) = entries.take("pipeline", "requests")? {
        p.requests = num(&v, l, "requests")?;
    }
    if let Some((v, l)) = entries.take("pipeline", "warmup")? {
        p.warmup = num(&v, l, "warmup")?;
    }
    if let Some((v, l)) = entries.take("pipeline", "seed")? {
        p.seed = num(&v, l, "seed")?;
    }
    if let Some((v, l)) = entries.take("pipeline", "service-time")? {
        p.service_time_ms = num(&v, l, "service-time")?;
    }
    if let Some((v, l)) = entries.take("pipeline", "tolerance")? {
        p.tolerance = num(&v, l, "tolerance")?;
    }
    if let Some((v, l)) = entries.take("pipeline", "quorum-limit")? {
        p.quorum_limit = num(&v, l, "quorum-limit")?;
    }
    if let Some((v, l)) = entries.take("pipeline", "colgen")? {
        p.colgen = boolean(&v, l, "colgen")?;
    }
    if let Some((v, l)) = entries.take("pipeline", "engine")? {
        let one = |s: &str| match s.trim() {
            "exact" => Ok(SimEngine::Exact),
            "aggregated" => Ok(SimEngine::Aggregated),
            other => Err(ScenarioError::Parse {
                line: l,
                message: format!("unknown engine `{other}` (exact|aggregated)"),
            }),
        };
        p.engine = if v.contains(',') {
            EngineSelection::PerPhase(v.split(',').map(one).collect::<Result<Vec<_>, _>>()?)
        } else {
            EngineSelection::Uniform(one(&v)?)
        };
    }
    // Both spellings accepted: `carry-queues` matches the section's
    // kebab-case keys, `carry_queues` matches the struct field.
    let carry = match entries.take("pipeline", "carry-queues")? {
        Some(e) => Some(e),
        None => entries.take("pipeline", "carry_queues")?,
    };
    if let Some((v, l)) = carry {
        p.carry_queues = boolean(&v, l, "carry-queues")?;
    }
    if let Some((v, l)) = entries.take("pipeline", "exact-compare")? {
        p.exact_compare = boolean(&v, l, "exact-compare")?;
    }
    if let Some((v, l)) = entries.take("pipeline", "exact-compare-sample")? {
        p.exact_compare_sample = num(&v, l, "exact-compare-sample")?;
    }
    Ok(p)
}

#[cfg(test)]
mod tests {
    use super::*;

    const FULL: &str = r#"
# A transit-stub flash-crowd scenario with a failure plan.
name = ts-flash

[topology]
source = transit-stub
seed = 7
transit-domains = 2
transit-size = 2
stubs-per-transit = 1
stub-size = 3
jitter = 0.04

[workload]
locations = 6
per-location = 3
demand = zipf:0.8
flash-phase = 1
flash-focus = 0
flash-boost = 5

[failures]
slowdown = 2:0:20
crash = 2:4
reoptimize = true

[pipeline]
system = grid:3
placement = shell:0
capacity = sweep:4
phases = 3
requests = 40
warmup = 5
seed = 42
tolerance = 0.12
"#;

    #[test]
    fn parses_the_full_example() {
        let spec = ScenarioSpec::parse(FULL).unwrap();
        assert_eq!(spec.name, "ts-flash");
        let TopologySource::TransitStub { config, seed } = &spec.topology else {
            panic!("wrong source: {:?}", spec.topology);
        };
        assert_eq!(*seed, 7);
        assert_eq!(config.transit_domains, 2);
        assert_eq!(config.stub_size, 3);
        assert_eq!(spec.workload.locations, 6);
        assert_eq!(spec.workload.demand, DemandModel::Zipf(0.8));
        let flash = spec.workload.flash.unwrap();
        assert_eq!((flash.phase, flash.focus, flash.boost), (1, 0, 5.0));
        assert_eq!(spec.failures.events.len(), 2);
        assert_eq!(spec.failures.events[1].multiplier, CRASH_MULTIPLIER);
        assert!(spec.failures.reoptimize);
        assert_eq!(spec.pipeline.system, "grid:3");
        assert_eq!(
            spec.pipeline.placement,
            PlacementAlgorithm::GridShell { anchor: 0 }
        );
        assert_eq!(spec.pipeline.capacity, CapacityChoice::Sweep { steps: 4 });
        assert_eq!(spec.pipeline.phases, 3);
        assert_eq!(spec.pipeline.tolerance, 0.12);
        // Untouched knobs keep their defaults.
        assert_eq!(spec.pipeline.op_time_ms, 0.007);
        assert_eq!(spec.pipeline.quorum_limit, 100_000);
    }

    #[test]
    fn empty_spec_is_the_default() {
        let spec = ScenarioSpec::parse("").unwrap();
        assert_eq!(spec, ScenarioSpec::default());
    }

    #[test]
    fn unknown_key_is_rejected_with_line() {
        let err = ScenarioSpec::parse("[pipeline]\nbogus = 1\n").unwrap_err();
        let ScenarioError::Parse { line, message } = err else {
            panic!("wrong error: {err}");
        };
        assert_eq!(line, 2);
        assert!(message.contains("bogus"), "{message}");
    }

    #[test]
    fn unknown_section_is_rejected() {
        assert!(matches!(
            ScenarioSpec::parse("[nonsense]\n"),
            Err(ScenarioError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn duplicate_key_is_rejected() {
        assert!(matches!(
            ScenarioSpec::parse("[pipeline]\nphases = 1\nphases = 2\n"),
            Err(ScenarioError::Parse { line: 3, .. })
        ));
    }

    #[test]
    fn duplicate_top_level_key_is_rejected() {
        assert!(matches!(
            ScenarioSpec::parse("name = \"a\"\nname = \"b\"\n"),
            Err(ScenarioError::Parse { line: 2, .. })
        ));
    }

    #[test]
    fn duplicate_key_across_repeated_sections_is_rejected() {
        // Reopening a section must not let the second occurrence win.
        let text = "[pipeline]\nphases = 1\n[workload]\nlocations = 6\n[pipeline]\nphases = 2\n";
        assert!(matches!(
            ScenarioSpec::parse(text),
            Err(ScenarioError::Parse { line: 6, .. })
        ));
    }

    #[test]
    fn duplicate_slowdown_target_is_rejected() {
        let text = "[failures]\nslowdown = 0:1:2\nslowdown = 0:1:4\n[pipeline]\nphases = 2\n";
        let err = ScenarioSpec::parse(text).unwrap_err();
        let ScenarioError::Parse { line, message } = err else {
            panic!("wrong error: {err}");
        };
        assert_eq!(line, 3);
        assert!(
            message.contains("duplicate failure target 0:1"),
            "{message}"
        );
        assert!(message.contains("line 2"), "{message}");
    }

    #[test]
    fn crash_on_slowed_target_is_rejected() {
        let text = "[failures]\nslowdown = 1:3:2\ncrash = 1:3\n[pipeline]\nphases = 2\n";
        assert!(matches!(
            ScenarioSpec::parse(text),
            Err(ScenarioError::Parse { line: 3, .. })
        ));
    }

    #[test]
    fn distinct_failure_targets_still_compose() {
        // Same element in different phases, and different elements in one
        // phase, are all legitimate.
        let text = "[failures]\nslowdown = 0:1:2\nslowdown = 1:1:2\ncrash = 0:2\n\
                    [pipeline]\nphases = 2\n";
        let spec = ScenarioSpec::parse(text).unwrap();
        assert_eq!(spec.failures.events.len(), 3);
    }

    #[test]
    fn malformed_entries_are_rejected() {
        assert!(ScenarioSpec::parse("[pipeline]\nphases\n").is_err());
        assert!(ScenarioSpec::parse("[pipeline]\nphases = x\n").is_err());
        assert!(ScenarioSpec::parse("[failures]\nslowdown = 1:2\n").is_err());
        assert!(ScenarioSpec::parse("[workload]\ndemand = pareto\n").is_err());
        assert!(ScenarioSpec::parse("[workload]\nflash-focus = 1\n").is_err());
        assert!(ScenarioSpec::parse("[topology]\nsource = marsnet\n").is_err());
    }

    #[test]
    fn colgen_and_sparse_apsp_keys_parse() {
        let text = "[topology]\nsource = transit-stub\nsparse-apsp = true\n\
                    [pipeline]\ncolgen = true\n";
        let spec = ScenarioSpec::parse(text).unwrap();
        let TopologySource::TransitStub { config, .. } = &spec.topology else {
            panic!("wrong source: {:?}", spec.topology);
        };
        assert!(config.sparse_apsp);
        assert!(spec.pipeline.colgen);
        // Both default off: the seed goldens depend on it.
        let spec = ScenarioSpec::parse("[topology]\nsource = transit-stub\n").unwrap();
        let TopologySource::TransitStub { config, .. } = &spec.topology else {
            panic!("wrong source");
        };
        assert!(!config.sparse_apsp);
        assert!(!spec.pipeline.colgen);
    }

    #[test]
    fn colgen_and_sparse_apsp_reject_non_booleans() {
        assert!(matches!(
            ScenarioSpec::parse("[pipeline]\ncolgen = maybe\n"),
            Err(ScenarioError::Parse { line: 2, .. })
        ));
        assert!(matches!(
            ScenarioSpec::parse("[topology]\nsource = transit-stub\nsparse-apsp = 1\n"),
            Err(ScenarioError::Parse { line: 3, .. })
        ));
        // sparse-apsp applies to the transit-stub generator only; anywhere
        // else it is an unknown key.
        assert!(matches!(
            ScenarioSpec::parse("[topology]\nsource = euclidean\nsparse-apsp = true\n"),
            Err(ScenarioError::Parse { line: 3, .. })
        ));
    }

    #[test]
    fn engine_keys_parse() {
        let text = "[pipeline]\ncolgen = true\nengine = aggregated\n\
                    carry-queues = true\nexact-compare = true\n";
        let spec = ScenarioSpec::parse(text).unwrap();
        assert_eq!(
            spec.pipeline.engine,
            EngineSelection::Uniform(SimEngine::Aggregated)
        );
        assert!(spec.pipeline.carry_queues);
        assert!(spec.pipeline.exact_compare);
        assert!(spec.pipeline.engine.all_aggregated());

        // Per-phase list, underscore alias for the carry flag.
        let text = "[pipeline]\ncolgen = true\nphases = 2\n\
                    engine = exact, aggregated\ncarry_queues = true\n";
        let spec = ScenarioSpec::parse(text).unwrap();
        assert_eq!(spec.pipeline.engine.for_phase(0), SimEngine::Exact);
        assert_eq!(spec.pipeline.engine.for_phase(1), SimEngine::Aggregated);
        assert!(spec.pipeline.engine.any_aggregated());
        assert!(!spec.pipeline.engine.all_aggregated());
        assert!(spec.pipeline.carry_queues);

        // All default off: every prior spec keeps its exact-engine runs.
        let spec = ScenarioSpec::parse("").unwrap();
        assert_eq!(spec.pipeline.engine, EngineSelection::default());
        assert!(!spec.pipeline.carry_queues);
        assert!(!spec.pipeline.exact_compare);
    }

    #[test]
    fn engine_keys_reject_bad_values() {
        // Unknown engine name.
        assert!(matches!(
            ScenarioSpec::parse("[pipeline]\ncolgen = true\nengine = fluid\n"),
            Err(ScenarioError::Parse { line: 3, .. })
        ));
        // Aggregated without colgen.
        let err = ScenarioSpec::parse("[pipeline]\nengine = aggregated\n").unwrap_err();
        let ScenarioError::Invalid(msg) = err else {
            panic!("wrong error: {err}");
        };
        assert!(msg.contains("colgen"), "{msg}");
        // Engine list length must match the phase count.
        let err = ScenarioSpec::parse(
            "[pipeline]\ncolgen = true\nphases = 3\nengine = exact, aggregated\n",
        )
        .unwrap_err();
        let ScenarioError::Invalid(msg) = err else {
            panic!("wrong error: {err}");
        };
        assert!(msg.contains("2 entries for 3 phases"), "{msg}");
        // exact-compare is meaningless without an aggregated phase.
        assert!(matches!(
            ScenarioSpec::parse("[pipeline]\nexact-compare = true\n"),
            Err(ScenarioError::Invalid(_))
        ));
    }

    #[test]
    fn fault_tolerance_keys_parse() {
        let text = "[failures]\nfault-tolerant = true\ntimeout-ms = 80\n\
                    max-retries = 2\nbackoff-ms = 5\nbackoff-jitter = 0.25\n\
                    detect-ms = 150\n";
        let spec = ScenarioSpec::parse(text).unwrap();
        let f = spec.failures.fault.expect("fault config parsed");
        assert_eq!(f.timeout_ms, 80.0);
        assert_eq!(f.max_retries, 2);
        assert_eq!(f.backoff_base_ms, 5.0);
        assert_eq!(f.backoff_jitter, 0.25);
        assert_eq!(f.detection_latency_ms, 150.0);
        // The crash threshold is pinned to the spec-level crash model.
        assert_eq!(f.crash_threshold, CRASH_MULTIPLIER);

        // The bare enable flag takes every default.
        let spec = ScenarioSpec::parse("[failures]\nfault-tolerant = true\n").unwrap();
        let f = spec.failures.fault.expect("defaults");
        assert_eq!(f.crash_threshold, CRASH_MULTIPLIER);

        // Off (and absent) keeps the omniscient-client behavior.
        assert_eq!(ScenarioSpec::parse("").unwrap().failures.fault, None);
        let spec = ScenarioSpec::parse("[failures]\nfault-tolerant = false\n").unwrap();
        assert_eq!(spec.failures.fault, None);
    }

    #[test]
    fn fault_tuning_without_enable_is_rejected() {
        let err = ScenarioSpec::parse("[failures]\ntimeout-ms = 80\n").unwrap_err();
        let ScenarioError::Parse { line, message } = err else {
            panic!("wrong error: {err}");
        };
        assert_eq!(line, 2);
        assert!(message.contains("fault-tolerant = true"), "{message}");
    }

    #[test]
    fn bad_fault_values_are_rejected() {
        for text in [
            "[failures]\nfault-tolerant = true\ntimeout-ms = 0\n",
            "[failures]\nfault-tolerant = true\ntimeout-ms = -5\n",
            "[failures]\nfault-tolerant = true\nbackoff-ms = -1\n",
            "[failures]\nfault-tolerant = true\nbackoff-jitter = 1.5\n",
            "[failures]\nfault-tolerant = true\ndetect-ms = -1\n",
        ] {
            assert!(
                matches!(ScenarioSpec::parse(text), Err(ScenarioError::Invalid(_))),
                "`{text}` should fail validation"
            );
        }
        assert!(ScenarioSpec::parse("[failures]\nfault-tolerant = maybe\n").is_err());
    }

    #[test]
    fn exact_compare_sample_parses_and_validates() {
        let text = "[pipeline]\ncolgen = true\nengine = aggregated\n\
                    exact-compare = true\nexact-compare-sample = 500\n";
        let spec = ScenarioSpec::parse(text).unwrap();
        assert_eq!(spec.pipeline.exact_compare_sample, 500);
        // Defaults to 0 (full-population compare).
        assert_eq!(
            ScenarioSpec::parse("")
                .unwrap()
                .pipeline
                .exact_compare_sample,
            0
        );
        // A cap without the compare itself is a contradiction.
        let err = ScenarioSpec::parse("[pipeline]\nexact-compare-sample = 500\n").unwrap_err();
        let ScenarioError::Invalid(msg) = err else {
            panic!("wrong error: {err}");
        };
        assert!(msg.contains("exact-compare-sample"), "{msg}");
    }

    #[test]
    fn semantic_validation_fires() {
        // Flash phase beyond the phase count.
        let text = "[workload]\nflash-phase = 5\n[pipeline]\nphases = 2\n";
        assert!(matches!(
            ScenarioSpec::parse(text),
            Err(ScenarioError::Invalid(_))
        ));
        // Failure phase beyond the phase count.
        let text = "[failures]\nslowdown = 9:0:2\n[pipeline]\nphases = 2\n";
        assert!(matches!(
            ScenarioSpec::parse(text),
            Err(ScenarioError::Invalid(_))
        ));
    }

    #[test]
    fn failure_element_out_of_universe_is_rejected() {
        // grid:2 has 4 elements; a typo'd target must fail loudly, not
        // silently inject nothing.
        let text = "[failures]\ncrash = 0:99\n[pipeline]\nsystem = grid:2\n";
        let err = ScenarioSpec::parse(text).unwrap_err();
        let ScenarioError::Invalid(msg) = err else {
            panic!("wrong error: {err}");
        };
        assert!(msg.contains("element 99"), "{msg}");
        assert!(msg.contains("4-element"), "{msg}");
    }

    #[test]
    fn degenerate_generator_parameters_are_errors_not_panics() {
        for text in [
            "[topology]\nsource = transit-stub\ntransit-domains = 0\n",
            "[topology]\nsource = transit-stub\nstub-size = 0\n",
            "[topology]\nsource = transit-stub\njitter = -1\n",
            "[topology]\nsource = euclidean\nsites = 0\n",
            "[topology]\nsource = euclidean\nside-ms = 0\n",
            "[topology]\nsource = hierarchical\nbranching = 0x2\nlevel-ms = 1, 1\n",
            "[topology]\nsource = hierarchical\nbranching = 2x2\nlevel-ms = 1, 0\n",
        ] {
            assert!(
                matches!(ScenarioSpec::parse(text), Err(ScenarioError::Invalid(_))),
                "`{text}` should fail validation"
            );
        }
    }

    #[test]
    fn overflowing_zipf_exponent_is_an_error_not_a_panic() {
        let text = "[workload]\nlocations = 6\ndemand = zipf:400\n";
        let err = ScenarioSpec::parse(text).unwrap_err();
        let ScenarioError::Invalid(msg) = err else {
            panic!("wrong error: {err}");
        };
        assert!(msg.contains("too large"), "{msg}");
    }

    #[test]
    fn seed_on_unseeded_sources_is_rejected() {
        for source in ["planetlab50", "daxlist161"] {
            let text = format!("[topology]\nsource = {source}\nseed = 9\n");
            let err = ScenarioSpec::parse(&text).unwrap_err();
            let ScenarioError::Parse { line, message } = err else {
                panic!("wrong error for {source}: {err}");
            };
            assert_eq!(line, 3);
            assert!(message.contains("does not apply"), "{message}");
        }
        // Generator sources keep accepting it.
        assert!(ScenarioSpec::parse("[topology]\nsource = euclidean\nseed = 9\n").is_ok());
    }

    #[test]
    fn hash_inside_quoted_value_is_not_a_comment() {
        let spec =
            ScenarioSpec::parse("[topology]\nsource = file\npath = \"runs#3/net.rtt\"\n").unwrap();
        assert_eq!(spec.topology, TopologySource::File("runs#3/net.rtt".into()));
        // Unquoted comments still strip.
        let spec = ScenarioSpec::parse("name = exp4   # the fourth run\n").unwrap();
        assert_eq!(spec.name, "exp4");
    }

    #[test]
    fn topology_keys_without_source_name_the_real_problem() {
        let err = ScenarioSpec::parse("[topology]\nseed = 5\n").unwrap_err();
        let ScenarioError::Parse { line, message } = err else {
            panic!("wrong error: {err}");
        };
        assert_eq!(line, 2);
        assert!(message.contains("source"), "{message}");
    }

    #[test]
    fn hierarchical_topology_parses() {
        let text = "[topology]\nsource = hierarchical\nbranching = 3x2x2\nlevel-ms = 40, 8, 1\n";
        let spec = ScenarioSpec::parse(text).unwrap();
        let TopologySource::Hierarchical { config, .. } = &spec.topology else {
            panic!("wrong source");
        };
        assert_eq!(config.branching, vec![3, 2, 2]);
        assert_eq!(config.level_ms, vec![40.0, 8.0, 1.0]);
        // Mismatched levels are a parse error.
        let bad = "[topology]\nsource = hierarchical\nbranching = 3x2\nlevel-ms = 40\n";
        assert!(ScenarioSpec::parse(bad).is_err());
    }

    #[test]
    fn system_and_placement_parsers() {
        assert_eq!(parse_system("grid:4").unwrap().universe_size(), 16);
        assert_eq!(
            parse_system("majority:fourfifths:2")
                .unwrap()
                .universe_size(),
            11
        );
        assert!(parse_system("grid").is_err());
        assert!(parse_system("grid:0").is_err());
        assert!(parse_system("majority:weird:2").is_err());
        assert_eq!(
            parse_placement("ball:3").unwrap(),
            PlacementAlgorithm::Ball { anchor: 3 }
        );
        assert!(parse_placement("teleport").is_err());
    }

    #[test]
    fn multipliers_for_phase_combines_events() {
        let plan = FailurePlan {
            events: vec![
                FailureEvent {
                    phase: 1,
                    element: 0,
                    multiplier: 4.0,
                },
                FailureEvent {
                    phase: 1,
                    element: 0,
                    multiplier: 2.0,
                },
                FailureEvent {
                    phase: 2,
                    element: 3,
                    multiplier: 8.0,
                },
            ],
            reoptimize: false,
            fault: None,
        };
        assert_eq!(plan.multipliers_for_phase(0, 5), None);
        let p1 = plan.multipliers_for_phase(1, 5).unwrap();
        assert_eq!(p1[0], 8.0);
        assert_eq!(p1[1], 1.0);
        let p2 = plan.multipliers_for_phase(2, 5).unwrap();
        assert_eq!(p2[3], 8.0);
    }
}
