//! Structured results of a scenario run.

use std::fmt;

use qp_protocol::SimEngine;

/// Per-phase outcome: what the LP predicted and what the DES measured.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseReport {
    /// Engine the phase simulated with (exact per-request DES or the
    /// aggregated fluid/hybrid engine).
    pub engine: SimEngine,
    /// When the spec's `exact-compare` ran the exact engine alongside an
    /// aggregated phase: the exact engine's mean response, ms.
    pub exact_response_ms: Option<f64>,
    /// `|aggregated − exact| / exact` over the mean response when
    /// `exact-compare` ran; folded into the scenario verdict.
    pub exact_compare_rel_error: Option<f64>,
    /// When the spec's `exact-compare-sample` capped the cross-check
    /// population: the number of clients both engines actually compared
    /// over. `None` when the compare ran (or would run) at full size.
    pub exact_compare_sampled: Option<usize>,
    /// Whether the phase simulated with client-side fault tolerance
    /// (timeouts, retries, failover) enabled.
    pub fault_tolerant: bool,
    /// Attempts abandoned to a timeout (fault-tolerant phases only).
    pub timeouts: u64,
    /// Retries issued after timeouts (fault-tolerant phases only).
    pub retries: u64,
    /// Retries that switched to the renormalized surviving strategy
    /// after failure detection (fault-tolerant phases only).
    pub failovers: u64,
    /// Phase index (0-based).
    pub phase: usize,
    /// Whether the flash crowd surged during this phase.
    pub flash: bool,
    /// Number of universe elements with an active failure.
    pub failed_elements: usize,
    /// Whether the strategy LP was re-optimized for this phase's
    /// failures (capacity of degraded sites scaled down).
    pub reoptimized: bool,
    /// Expected idle-network floor under this phase's strategy, demand
    /// weights, and service multipliers, ms (the LP-side prediction).
    pub predicted_floor_ms: f64,
    /// DES mean response time, ms.
    pub des_response_ms: f64,
    /// DES mean idle-network floor of the quorums actually accessed, ms.
    pub des_floor_ms: f64,
    /// `|des_floor − predicted| / predicted` — the cross-check residual.
    pub rel_error: f64,
    /// Measured requests completed.
    pub completed_requests: u64,
    /// Highest per-node utilization over the phase.
    pub max_server_utilization: f64,
}

/// Pricing-oracle statistics of a column-generation scenario run,
/// aggregated over every master solve the pipeline performed (capacity
/// selection sweep plus per-phase re-optimizations). `columns_in_master`
/// vs `total_columns` is the headline: how much of the full
/// (location × quorum) LP the restricted master ever materialized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PricingReport {
    /// Columns materialized in the restricted master after the last solve.
    pub columns_in_master: usize,
    /// Columns full enumeration would materialize (locations × quorums).
    pub total_columns: usize,
    /// Columns appended across all solves (seed growth + oracle finds).
    pub columns_generated: usize,
    /// Total pricing passes over absent (location, quorum) pairs.
    pub oracle_passes: usize,
    /// Total master LP (re-)solves.
    pub master_resolves: usize,
}

/// Per-pipeline-stage work breakdown of one scenario run — logical
/// quantities only (counts, not wall-clock), so it is bit-identical
/// across reruns and thread counts. Opt-in via
/// [`crate::ScenarioRunner::with_stage_breakdown`] (the CLI enables it
/// together with `--trace`); `None` keeps rendered reports and JSONL
/// checkpoint lines byte-identical to earlier releases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageBreakdown {
    /// Topology stage: sites in the built network.
    pub topology_sites: usize,
    /// Placement stage: universe elements placed onto nodes.
    pub placement_elements: usize,
    /// Strategy-LP stage: total simplex pivots across every solve
    /// (equals [`ScenarioReport::lp_pivots`]).
    pub lp_pivots: usize,
    /// Capacity stage: LP parameterizations solved while selecting
    /// capacities (sweep points, or the probe+final solves of the
    /// shaped-profile rules).
    pub capacity_points: usize,
    /// DES stage: phases simulated.
    pub des_phases: usize,
    /// DES stage: measured requests completed across all phases.
    pub des_completed_requests: u64,
}

/// The structured outcome of one scenario: pipeline summary, per-phase
/// LP-vs-DES comparison, and the cross-check verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReport {
    /// Scenario name.
    pub name: String,
    /// Topology description.
    pub topology: String,
    /// Number of network sites.
    pub sites: usize,
    /// Quorum-system label.
    pub system: String,
    /// Labels of the nodes hosting the placement.
    pub placement_sites: Vec<String>,
    /// Number of client locations.
    pub locations: usize,
    /// Total clients.
    pub total_clients: usize,
    /// Human-readable capacity selection (e.g. `sweep(4) → c* = 0.667`).
    pub capacity: String,
    /// LP optimal average network delay at the chosen capacities, ms.
    pub lp_delay_ms: f64,
    /// Model-scored average response time of the chosen strategies, ms.
    pub lp_response_ms: f64,
    /// Total simplex pivots spent (cold base + every warm re-solve).
    pub lp_pivots: usize,
    /// Pricing statistics when the strategy LP ran through column
    /// generation; `None` on the default full-enumeration path (whose
    /// rendered reports stay byte-identical to earlier releases).
    pub pricing: Option<PricingReport>,
    /// Per-pipeline-stage work breakdown; `None` unless the runner was
    /// configured with
    /// [`crate::ScenarioRunner::with_stage_breakdown`].
    pub stages: Option<StageBreakdown>,
    /// Per-phase results.
    pub phases: Vec<PhaseReport>,
    /// Cross-check tolerance (relative).
    pub tolerance: f64,
    /// Largest per-phase [`PhaseReport::rel_error`].
    pub max_rel_error: f64,
    /// Whether every phase's residual is within tolerance.
    pub pass: bool,
}

impl ScenarioReport {
    /// One summary line, e.g. for matrix listings.
    pub fn summary_line(&self) -> String {
        format!(
            "{}: {} sites, {} phases, LP delay {:.1} ms, max rel err {:.1}% → {}",
            self.name,
            self.sites,
            self.phases.len(),
            self.lp_delay_ms,
            self.max_rel_error * 100.0,
            if self.pass { "PASS" } else { "FAIL" }
        )
    }
}

impl fmt::Display for ScenarioReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "scenario:   {}", self.name)?;
        writeln!(f, "topology:   {} ({} sites)", self.topology, self.sites)?;
        writeln!(
            f,
            "system:     {} on [{}]",
            self.system,
            self.placement_sites.join(", ")
        )?;
        writeln!(
            f,
            "clients:    {} at {} locations",
            self.total_clients, self.locations
        )?;
        writeln!(f, "capacity:   {}", self.capacity)?;
        writeln!(
            f,
            "LP:         delay {:.2} ms, response {:.2} ms, {} pivots",
            self.lp_delay_ms, self.lp_response_ms, self.lp_pivots
        )?;
        if let Some(p) = &self.pricing {
            writeln!(
                f,
                "pricing:    {} of {} columns in master ({} generated), \
                 {} oracle passes, {} master solves",
                p.columns_in_master,
                p.total_columns,
                p.columns_generated,
                p.oracle_passes,
                p.master_resolves
            )?;
        }
        if let Some(s) = &self.stages {
            writeln!(
                f,
                "stages:     topology {} sites, placement {} elements, \
                 LP {} pivots, capacity {} points, DES {} phases / {} reqs",
                s.topology_sites,
                s.placement_elements,
                s.lp_pivots,
                s.capacity_points,
                s.des_phases,
                s.des_completed_requests
            )?;
        }
        for p in &self.phases {
            let mut tags = Vec::new();
            if p.engine == SimEngine::Aggregated {
                tags.push("agg".to_string());
            }
            if p.flash {
                tags.push("flash".to_string());
            }
            if p.failed_elements > 0 {
                tags.push(format!(
                    "fail×{}{}",
                    p.failed_elements,
                    if p.reoptimized { "+reopt" } else { "" }
                ));
            }
            let tag = if tags.is_empty() {
                "nominal".to_string()
            } else {
                tags.join(",")
            };
            writeln!(
                f,
                "phase {} [{:<12}] DES resp {:8.2} ms, floor {:8.2} ms, \
                 predicted {:8.2} ms, rel err {:5.2}%, util {:.2}, {} reqs",
                p.phase,
                tag,
                p.des_response_ms,
                p.des_floor_ms,
                p.predicted_floor_ms,
                p.rel_error * 100.0,
                p.max_server_utilization,
                p.completed_requests
            )?;
            if p.fault_tolerant {
                writeln!(
                    f,
                    "        fault-tolerant: {} timeouts, {} retries, {} failovers",
                    p.timeouts, p.retries, p.failovers
                )?;
            }
            if let (Some(exact), Some(err)) = (p.exact_response_ms, p.exact_compare_rel_error) {
                let sampled = p
                    .exact_compare_sampled
                    .map(|n| format!(" over {n} sampled clients"))
                    .unwrap_or_default();
                writeln!(
                    f,
                    "        exact-compare: exact resp {exact:8.2} ms, \
                     divergence {:5.2}%{sampled}",
                    err * 100.0
                )?;
            }
        }
        writeln!(
            f,
            "cross-check: max rel err {:.2}% vs tolerance {:.1}% → {}",
            self.max_rel_error * 100.0,
            self.tolerance * 100.0,
            if self.pass { "PASS" } else { "FAIL" }
        )
    }
}
