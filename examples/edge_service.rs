//! Edge-service deployment study: how many proxies, which quorum system?
//!
//! The paper's motivating application is edge computing — replicating a
//! dynamic service across wide-area proxies, coordinating through quorums.
//! This example walks an operator's decision: for a 161-site network and a
//! range of client demands, compare the singleton (one central server)
//! against Majority and Grid deployments of increasing size, and report
//! which deployment minimizes average response time at each demand level.
//!
//! ```text
//! cargo run --release --example edge_service
//! ```

use quorumnet::prelude::*;

struct Candidate {
    label: String,
    system: QuorumSystem,
}

fn candidates(max_universe: usize) -> Vec<Candidate> {
    let mut out = Vec::new();
    for t in [1usize, 3, 6] {
        let sys = QuorumSystem::majority(MajorityKind::SimpleMajority, t).expect("t ≥ 1");
        if sys.universe_size() <= max_universe {
            out.push(Candidate {
                label: sys.label(),
                system: sys,
            });
        }
    }
    for k in [3usize, 5, 7] {
        let sys = QuorumSystem::grid(k).expect("k ≥ 1");
        if sys.universe_size() <= max_universe {
            out.push(Candidate {
                label: sys.label(),
                system: sys,
            });
        }
    }
    out
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = datasets::daxlist_161();
    let clients: Vec<NodeId> = net.nodes().collect();
    println!("edge network: {} candidate proxy sites\n", net.len());

    let demands = [0.0, 1_000.0, 4_000.0, 16_000.0];
    println!(
        "{:<24} {:>10} {:>12} {:>12} {:>12}",
        "deployment", "demand=0", "demand=1k", "demand=4k", "demand=16k"
    );

    // Singleton baseline: one server at the median; every request hits it.
    // Under demand, its load is the full quorum-system load (1.0 per
    // element on one node) — the extreme of the paper's dispersion
    // trade-off.
    let single_delay = singleton::singleton_delay(&net, &clients);
    let singleton_sys = singleton::singleton_system();
    let singleton_place = singleton::median_placement(&net, 1)?;
    let mut row = format!("{:<24}", "singleton (median)");
    for &demand in &demands {
        let eval = response::evaluate_closest(
            &net,
            &clients,
            &singleton_sys,
            &singleton_place,
            ResponseModel::from_demand(0.007, demand),
        )?;
        row += &format!(" {:>11.1}", eval.avg_response_ms);
    }
    println!("{row}   (delay floor {single_delay:.1} ms)");

    let mut best_per_demand: Vec<(f64, String)> = demands
        .iter()
        .map(|_| (f64::INFINITY, String::new()))
        .collect();

    for cand in candidates(net.len()) {
        let placement = one_to_one::best_placement(&net, &cand.system)?;
        let mut row = format!("{:<24}", cand.label);
        for (i, &demand) in demands.iter().enumerate() {
            let model = ResponseModel::from_demand(0.007, demand);
            // Low demand favours closest; high demand favours balanced —
            // report the better of the two, as an operator would pick.
            let closest =
                response::evaluate_closest(&net, &clients, &cand.system, &placement, model)?;
            let balanced =
                response::evaluate_balanced(&net, &clients, &cand.system, &placement, model)?;
            let best = closest.avg_response_ms.min(balanced.avg_response_ms);
            row += &format!(" {:>11.1}", best);
            if best < best_per_demand[i].0 {
                best_per_demand[i] = (best, cand.label.clone());
            }
        }
        println!("{row}");
    }

    println!("\nrecommendation by demand level:");
    for (&demand, (resp, label)) in demands.iter().zip(&best_per_demand) {
        println!(
            "  demand {:>6}: {} ({:.1} ms avg response)",
            demand, label, resp
        );
    }
    println!(
        "\nNote: quorum deployments trade a little latency for fault tolerance;\n\
         Lin's bound says no deployment can beat half the singleton delay\n\
         ({:.1} ms here).",
        single_delay / 2.0
    );
    Ok(())
}
