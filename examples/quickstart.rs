//! Quickstart: deploy a quorum system on a wide-area network and measure
//! client response times.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use quorumnet::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A wide-area network: 50 sites with realistic RTTs (the repo's
    //    stand-in for the paper's PlanetLab measurements).
    let net = datasets::planetlab_50();
    let clients: Vec<NodeId> = net.nodes().collect();
    println!(
        "network: {} sites, mean RTT {:.1} ms",
        net.len(),
        net.distances().mean_distance()
    );

    // 2. A quorum system: 3×3 Grid (9 logical servers, quorums of 5).
    let grid = QuorumSystem::grid(3)?;
    println!(
        "system:  {} — {} quorums of {}",
        grid.label(),
        grid.quorum_count(),
        grid.min_quorum_size()
    );

    // 3. Place it: best one-to-one placement across all anchor clients.
    let placement = one_to_one::best_placement(&net, &grid)?;
    let support: Vec<String> = placement
        .support_set()
        .iter()
        .map(|&v| net.label(v).to_string())
        .collect();
    println!("placed on: {}", support.join(", "));

    // 4. Low demand (α = 0): closest-quorum access, response = network delay.
    let low = response::evaluate_closest(
        &net,
        &clients,
        &grid,
        &placement,
        ResponseModel::network_delay_only(),
    )?;
    println!("\nlow demand (closest quorum):");
    println!("  avg response      {:8.2} ms", low.avg_response_ms);
    println!(
        "  singleton baseline{:8.2} ms",
        singleton::singleton_delay(&net, &clients)
    );

    // 5. High demand: tune access strategies with the LP under a capacity
    //    sweep and report the best point.
    let quorums = grid.enumerate(10_000)?;
    let model = ResponseModel::from_demand(0.007, 16_000.0);
    let sweep = strategy_lp::tune_uniform_capacity(
        &net,
        &clients,
        &placement,
        &quorums,
        grid.optimal_load().expect("grid has a closed form"),
        10,
        model,
    )?;
    let (c, best) = sweep.best_point();
    println!("\nhigh demand (LP-tuned strategies, demand = 16000 req, 0.007 ms/req):");
    println!("  best capacity     {c:8.2}");
    println!("  avg response      {:8.2} ms", best.avg_response_ms);
    println!("  network component {:8.2} ms", best.avg_network_delay_ms);
    println!("  max node load     {:8.2}", best.max_node_load());

    Ok(())
}
