//! Run the Q/U-style protocol simulation and compare it with the analytic
//! response-time model (the §3 motivating experiment, in miniature).
//!
//! ```text
//! cargo run --release --example protocol_sim
//! ```

use quorumnet::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = datasets::planetlab_50();

    println!("Q/U on Planetlab-50: n = 5t+1 servers, quorums of 4t+1, 1 ms/request\n");
    println!(
        "{:>3} {:>4} {:>9} {:>13} {:>13} {:>9} {:>9}",
        "t", "n", "clients", "net_delay_ms", "response_ms", "p95_ms", "max_util"
    );

    for t in 1..=4 {
        let sys = QuorumSystem::majority(MajorityKind::FourFifths, t)?;
        let placement = one_to_one::best_placement_by(
            &net,
            &sys,
            one_to_one::SelectionObjective::BalancedDelay,
        )?;
        let base = ClientPopulation::representative(&net, &sys, &placement, 10, 1);

        for per_loc in [1usize, 5, 10] {
            let pop = base.with_per_location(per_loc);
            let report = simulate(
                &net,
                &sys,
                &placement,
                &pop,
                QuorumChoice::Balanced,
                &ProtocolConfig {
                    service_time_ms: 1.0,
                    warmup_requests: 20,
                    measured_requests: 150,
                    seed: 7,
                    service_multipliers: None,
                    dedup_colocated: false,
                    streaming_percentiles: false,
                    initial_server_busy_ms: None,
                    fault: None,
                },
            )?;
            let max_util = report
                .server_utilization
                .iter()
                .copied()
                .fold(0.0_f64, f64::max);
            println!(
                "{t:>3} {:>4} {:>9} {:>13.1} {:>13.1} {:>9.1} {:>9.2}",
                sys.universe_size(),
                pop.total_clients(),
                report.avg_network_delay_ms,
                report.avg_response_ms,
                report.percentiles_ms.1,
                max_util,
            );
        }
    }

    // Failure injection: one slow replica. Q/U's 4t+1-of-5t+1 quorums
    // cannot avoid it for long — response time degrades visibly.
    println!("\nfailure injection: server 0 degraded 25× (t = 2, 50 clients)");
    let sys = QuorumSystem::majority(MajorityKind::FourFifths, 2)?;
    let placement =
        one_to_one::best_placement_by(&net, &sys, one_to_one::SelectionObjective::BalancedDelay)?;
    let pop = ClientPopulation::representative(&net, &sys, &placement, 10, 5);
    for (label, mults) in [
        ("nominal", None),
        ("degraded", {
            let mut m = vec![1.0; sys.universe_size()];
            m[0] = 25.0;
            Some(m)
        }),
    ] {
        let report = simulate(
            &net,
            &sys,
            &placement,
            &pop,
            QuorumChoice::Balanced,
            &ProtocolConfig {
                service_multipliers: mults,
                measured_requests: 150,
                ..ProtocolConfig::default()
            },
        )?;
        println!(
            "  {label:<9} response {:7.1} ms (p99 {:.1} ms)",
            report.avg_response_ms, report.percentiles_ms.2
        );
    }

    Ok(())
}
