//! Bring your own network and your own quorum system.
//!
//! Everything in the library works on user-supplied inputs: here we build a
//! small continental backbone as a sparse weighted graph, derive the RTT
//! metric by shortest paths, define a custom explicit quorum system (a
//! two-row "wheel"), validate it, and run the full placement + strategy
//! pipeline on it.
//!
//! ```text
//! cargo run --release --example custom_topology
//! ```

use quorumnet::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 10-node backbone: two metro rings bridged by a transatlantic link.
    //   0-1-2-3-0 (US ring, 10-20 ms)   5-6-7-8-5 (EU ring, 8-15 ms)
    //   4: US hub, 9: EU hub, 4-9: 80 ms transatlantic
    let mut g = Graph::new(10);
    let us = [(0, 1, 12.0), (1, 2, 18.0), (2, 3, 15.0), (3, 0, 10.0)];
    let eu = [(5, 6, 8.0), (6, 7, 14.0), (7, 8, 12.0), (8, 5, 9.0)];
    for &(a, b, w) in us.iter().chain(&eu) {
        g.add_edge(NodeId::new(a), NodeId::new(b), w)?;
    }
    for &(hub, ring) in &[(4, 0), (4, 2), (9, 5), (9, 7)] {
        g.add_edge(NodeId::new(hub), NodeId::new(ring), 6.0)?;
    }
    g.add_edge(NodeId::new(4), NodeId::new(9), 80.0)?;
    let net = Network::from_graph(&g)?;
    println!(
        "custom backbone: {} nodes, mean RTT {:.1} ms, max {:.1} ms",
        net.len(),
        net.distances().mean_distance(),
        net.distances().max_distance()
    );

    // A custom 5-element quorum system: a hub element {0} in every quorum
    // plus one of four spokes — a star/wheel. Any two quorums share the
    // hub, so intersection holds (validated by the constructor).
    let quorums: Vec<Quorum> = (1..5)
        .map(|spoke| Quorum::new(vec![ElementId::new(0), ElementId::new(spoke)]))
        .collect();
    let wheel = QuorumSystem::explicit(5, quorums.clone(), "4-spoke wheel")?;
    println!(
        "system: {} ({} quorums of {})",
        wheel.label(),
        wheel.quorum_count(),
        wheel.min_quorum_size()
    );

    // Its optimal load has no closed form — compute it with the load LP.
    let (l_opt, _) = load::optimal_load_lp(&quorums, wheel.universe_size())?;
    println!("optimal load (LP): {l_opt:.3}  (hub is in every quorum → load 1)");

    // Place and evaluate.
    let clients: Vec<NodeId> = net.nodes().collect();
    let placement = one_to_one::best_placement(&net, &wheel)?;
    let low = response::evaluate_closest(
        &net,
        &clients,
        &wheel,
        &placement,
        ResponseModel::network_delay_only(),
    )?;
    println!(
        "\nclosest-strategy network delay: {:.1} ms (singleton baseline {:.1} ms)",
        low.avg_network_delay_ms,
        singleton::singleton_delay(&net, &clients)
    );

    // Strategy LP under tight hub pressure: the hub's load is pinned at 1,
    // so capacities only shape the spokes.
    let caps = CapacityProfile::uniform(net.len(), 1.0);
    let strategy = strategy_lp::optimize_strategies(&net, &clients, &placement, &quorums, &caps)?;
    let tuned = response::evaluate_matrix(
        &net,
        &clients,
        &placement,
        &quorums,
        &strategy,
        ResponseModel::from_demand(0.007, 4000.0),
    )?;
    println!(
        "LP-tuned response at demand 4000: {:.1} ms (max node load {:.2})",
        tuned.avg_response_ms,
        tuned.max_node_load()
    );
    println!("\nThe wheel shows the paper's dispersion limit: a hub element in every\nquorum caps how much load any strategy can spread (L_opt = 1).");
    Ok(())
}
