use qp_topology::datasets::{ClusterSpec, WanConfig};
use qp_topology::io::format_matrix;

fn main() {
    let cfg = WanConfig {
        sites: 116,
        clusters: vec![
            ClusterSpec::new("us-east", 40.7, -74.0, 1100.0, 0.30),
            ClusterSpec::new("us-central", 41.9, -87.6, 900.0, 0.14),
            ClusterSpec::new("us-west", 37.4, -122.1, 900.0, 0.16),
            ClusterSpec::new("europe", 50.1, 8.7, 1200.0, 0.22),
            ClusterSpec::new("east-asia", 35.7, 139.7, 1400.0, 0.11),
            ClusterSpec::new("south-america", -23.5, -46.6, 900.0, 0.07),
        ],
        route_inflation: 1.5,
        access_ms: (1.0, 10.0),
        jitter_frac: 0.15,
    };
    let net = cfg.generate(0x6b69_6e67); // "king"
    print!("{}", format_matrix(&net));
}
