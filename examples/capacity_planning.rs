//! Capacity planning with the access-strategy LP (§7 end to end).
//!
//! Given a fixed 5×5 Grid deployment on the 50-site network and a high
//! client demand, this example shows the operator's three levers:
//!
//! 1. sweep a **uniform** per-node capacity from `L_opt` to 1 and watch the
//!    delay/load trade-off (Fig 7.6's mechanism);
//! 2. switch to the **non-uniform inverse-distance** capacities (Fig 7.7);
//! 3. compare against the untuned *closest* and *balanced* strategies.
//!
//! ```text
//! cargo run --release --example capacity_planning
//! ```

use quorumnet::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = datasets::planetlab_50();
    let clients: Vec<NodeId> = net.nodes().collect();
    let grid = QuorumSystem::grid(5)?;
    let l_opt = grid.optimal_load().expect("grid closed form");
    let placement = one_to_one::best_placement(&net, &grid)?;
    let quorums = grid.enumerate(10_000)?;
    let model = ResponseModel::from_demand(0.007, 16_000.0);

    println!(
        "deployment: {} on {} sites; L_opt = {l_opt:.3}\n",
        grid.label(),
        net.len()
    );

    // Untuned baselines.
    let closest = response::evaluate_closest(&net, &clients, &grid, &placement, model)?;
    let balanced = response::evaluate_balanced(&net, &clients, &grid, &placement, model)?;
    println!("baseline strategies at demand 16000:");
    println!(
        "  closest : response {:7.1} ms (delay {:5.1}, max load {:.2})",
        closest.avg_response_ms,
        closest.avg_network_delay_ms,
        closest.max_node_load()
    );
    println!(
        "  balanced: response {:7.1} ms (delay {:5.1}, max load {:.2})",
        balanced.avg_response_ms,
        balanced.avg_network_delay_ms,
        balanced.max_node_load()
    );

    // Lever 1: uniform capacity sweep.
    println!("\nuniform capacity sweep (LP 4.3–4.6):");
    println!(
        "{:>9} {:>12} {:>12} {:>9}",
        "capacity", "delay_ms", "response_ms", "max_load"
    );
    let sweep =
        strategy_lp::tune_uniform_capacity(&net, &clients, &placement, &quorums, l_opt, 10, model)?;
    for (c, eval) in &sweep.points {
        println!(
            "{c:>9.3} {:>12.1} {:>12.1} {:>9.2}",
            eval.avg_network_delay_ms,
            eval.avg_response_ms,
            eval.max_node_load()
        );
    }
    let (best_c, best_eval) = sweep.best_point();
    println!(
        "  → best: capacity {best_c:.3}, response {:.1} ms",
        best_eval.avg_response_ms
    );

    // Lever 2: non-uniform capacities over [L_opt, c].
    println!("\nnon-uniform (inverse-distance) capacities, γ sweep:");
    println!("{:>9} {:>12} {:>9}", "gamma", "response_ms", "max_load");
    let mut best_nonuniform = f64::INFINITY;
    for (c, _) in &sweep.points {
        let (_, eval) = strategy_lp::evaluate_at_nonuniform_capacity(
            &net, &clients, &placement, &quorums, l_opt, *c, model,
        )?;
        println!(
            "{c:>9.3} {:>12.1} {:>9.2}",
            eval.avg_response_ms,
            eval.max_node_load()
        );
        best_nonuniform = best_nonuniform.min(eval.avg_response_ms);
    }

    println!("\nsummary (avg response, demand 16000):");
    println!("  closest strategy      {:8.1} ms", closest.avg_response_ms);
    println!(
        "  balanced strategy     {:8.1} ms",
        balanced.avg_response_ms
    );
    println!(
        "  LP, uniform caps      {:8.1} ms",
        best_eval.avg_response_ms
    );
    println!("  LP, non-uniform caps  {:8.1} ms", best_nonuniform);
    Ok(())
}
